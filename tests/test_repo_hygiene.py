"""Tracked-artifact hygiene (ISSUE 10 satellite).

The CI workflow greps the checkout for stray bytecode and build
artifacts; this is the same guard as a test, so it also fires locally
for anyone who accidentally ``git add``s a ``__pycache__`` after
running the suite with ``PYTHONPATH=src``.
"""

import os
import subprocess

import pytest

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..")
)

#: Path fragments that must never be tracked.  Kept in sync with the
#: "no build artifacts" step in .github/workflows/ci.yml.
FORBIDDEN_FRAGMENTS = (
    "__pycache__",
    ".pytest_cache",
    ".mypy_cache",
    ".egg-info",
    "build/",
    "dist/",
)

FORBIDDEN_SUFFIXES = (".pyc", ".pyo", ".pyd", ".so", ".whl")


def tracked_files():
    try:
        output = subprocess.run(
            ["git", "ls-files"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout
    except (OSError, subprocess.CalledProcessError):
        pytest.skip("not a git checkout (or git unavailable)")
    return output.splitlines()


def test_no_bytecode_or_build_artifacts_tracked():
    offenders = [
        path
        for path in tracked_files()
        if any(fragment in path for fragment in FORBIDDEN_FRAGMENTS)
        or path.endswith(FORBIDDEN_SUFFIXES)
    ]
    assert offenders == [], (
        "build artifacts are tracked in git; "
        "`git rm -r --cached` them: " + ", ".join(offenders)
    )


def test_gitignore_shields_bytecode_under_src():
    # Running this suite with PYTHONPATH=src plants __pycache__ under
    # src/ — unavoidable without PYTHONDONTWRITEBYTECODE.  What must
    # hold instead is that .gitignore covers them, so a later
    # `git add -A` can never turn them into tracked files (the case
    # the test above would then catch too late, post-commit).
    probes = [
        "src/repro/__pycache__/x.pyc",
        "src/repro/store/__pycache__/x.pyc",
        "tests/__pycache__/x.pyc",
        ".pytest_cache/x",
    ]
    try:
        result = subprocess.run(
            ["git", "check-ignore", "--stdin"],
            cwd=REPO_ROOT,
            input="\n".join(probes) + "\n",
            capture_output=True,
            text=True,
        )
    except OSError:
        pytest.skip("git unavailable")
    ignored = set(result.stdout.splitlines())
    missed = [probe for probe in probes if probe not in ignored]
    assert missed == [], (
        ".gitignore does not shield these artifact paths: "
        + ", ".join(missed)
    )
