"""Tests for RunStreams assembly and TwoWayConfig partitioning."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import (
    BUFFER_FRACTIONS,
    RECOMMENDED,
    TABLE_5_13_CONFIGS,
    TwoWayConfig,
)
from repro.core.streams import RunStreams


class TestRunStreams:
    def test_assembly_order_4_3_2_1(self):
        streams = RunStreams(
            run_index=0,
            stream1=[52, 53],
            stream2=[51, 50],
            stream3=[39, 40],
            stream4=[38, 37],
        )
        assert streams.assemble() == [37, 38, 39, 40, 50, 51, 52, 53]

    def test_len_counts_all_streams(self):
        streams = RunStreams(0, [1], [2], [3], [4])
        assert len(streams) == 4

    def test_empty_streams_assemble_empty(self):
        assert RunStreams(0).assemble() == []

    def test_invariants_hold_for_valid_streams(self):
        streams = RunStreams(0, [5, 6], [4, 3], [1, 2], [0])
        assert streams.check_invariants()

    def test_invariants_catch_unsorted_stream(self):
        streams = RunStreams(0, stream1=[2, 1])
        assert not streams.check_invariants()

    def test_invariants_catch_range_overlap(self):
        streams = RunStreams(0, stream1=[1, 2], stream4=[100])
        assert not streams.check_invariants()


class TestTwoWayConfig:
    def test_default_is_recommended_shape(self):
        config = TwoWayConfig()
        assert config.buffer_setup == "both"
        assert config.buffer_fraction == pytest.approx(0.02)
        assert config.input_heuristic == "mean"
        assert config.output_heuristic == "random"

    def test_recommended_matches_section_5_3(self):
        assert RECOMMENDED.buffer_setup == "both"
        assert RECOMMENDED.input_heuristic == "mean"
        assert RECOMMENDED.output_heuristic == "random"
        assert RECOMMENDED.buffer_fraction == pytest.approx(0.02)

    def test_invalid_setup(self):
        with pytest.raises(ValueError):
            TwoWayConfig(buffer_setup="neither")

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            TwoWayConfig(buffer_fraction=1.5)
        with pytest.raises(ValueError):
            TwoWayConfig(buffer_fraction=-0.1)

    def test_partition_both_splits_evenly(self):
        config = TwoWayConfig(buffer_setup="both", buffer_fraction=0.2)
        heap, input_buf, victim = config.partition_memory(1_000)
        assert heap == 800
        assert input_buf == 100
        assert victim == 100

    def test_partition_input_only(self):
        config = TwoWayConfig(buffer_setup="input", buffer_fraction=0.1)
        heap, input_buf, victim = config.partition_memory(1_000)
        assert (heap, input_buf, victim) == (900, 100, 0)

    def test_partition_victim_only(self):
        config = TwoWayConfig(buffer_setup="victim", buffer_fraction=0.1)
        heap, input_buf, victim = config.partition_memory(1_000)
        assert (heap, input_buf, victim) == (900, 0, 100)

    def test_partition_never_starves_heaps(self):
        config = TwoWayConfig(buffer_setup="both", buffer_fraction=0.2)
        heap, _, _ = config.partition_memory(2)
        assert heap >= 1

    def test_table_5_13_configs_shapes(self):
        assert TABLE_5_13_CONFIGS["cfg1"].buffer_setup == "input"
        assert TABLE_5_13_CONFIGS["cfg2"].buffer_fraction == pytest.approx(0.20)
        assert TABLE_5_13_CONFIGS["cfg3"].buffer_fraction == pytest.approx(0.02)
        for config in TABLE_5_13_CONFIGS.values():
            assert config.input_heuristic == "mean"
            assert config.output_heuristic == "random"

    def test_paper_fraction_levels_are_valid(self):
        for fraction in BUFFER_FRACTIONS:
            TwoWayConfig(buffer_fraction=fraction)


@settings(max_examples=200)
@given(
    st.sampled_from(["input", "both", "victim"]),
    st.floats(0.0, 0.99),
    st.integers(2, 10_000),
)
def test_partition_always_sums_to_total(setup, fraction, memory):
    config = TwoWayConfig(buffer_setup=setup, buffer_fraction=fraction)
    heap, input_buf, victim = config.partition_memory(memory)
    assert heap + input_buf + victim == memory
    assert heap >= 1
    assert input_buf >= 0
    assert victim >= 0
