"""Property-based tests for the simulated storage stack."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.iosim.disk import DiskGeometry, DiskModel
from repro.iosim.files import SimulatedFileSystem
from repro.iosim.reverse_file import ReverseRunReader, ReverseRunWriter


def make_fs(page_records):
    geometry = DiskGeometry(page_records=page_records)
    return SimulatedFileSystem(DiskModel(geometry=geometry))


@settings(max_examples=100)
@given(
    st.lists(st.integers(), max_size=200),
    st.integers(1, 32),
    st.integers(1, 8),
)
def test_file_roundtrip_any_page_size(records, page_records, write_buffer):
    fs = make_fs(page_records)
    handle = fs.create("f", write_buffer_pages=write_buffer)
    handle.extend(records)
    handle.close()
    assert handle.read_all() == records


@settings(max_examples=100)
@given(
    st.lists(st.integers(), max_size=200),
    st.integers(1, 32),
    st.integers(1, 10),
)
def test_buffered_read_equals_plain_read(records, page_records, buffer_pages):
    fs = make_fs(page_records)
    handle = fs.create_from("f", records)
    assert list(handle.records_buffered(buffer_pages)) == records


@settings(max_examples=100)
@given(
    st.lists(st.integers(), min_size=1, max_size=150),
    st.integers(1, 16),
    st.integers(2, 8),
)
def test_reverse_file_roundtrip_any_geometry(values, page_records, pages_per_file):
    descending = sorted(values, reverse=True)
    fs = make_fs(page_records)
    writer = ReverseRunWriter(fs, "rev", pages_per_file=pages_per_file)
    for value in descending:
        writer.append(value)
    writer.close()
    assert ReverseRunReader(writer).read_all() == sorted(values)


@settings(max_examples=60)
@given(
    st.lists(st.integers(), min_size=1, max_size=150),
    st.integers(1, 16),
    st.integers(2, 8),
    st.integers(1, 6),
)
def test_reverse_file_buffered_equals_plain(
    values, page_records, pages_per_file, buffer_pages
):
    descending = sorted(values, reverse=True)
    fs = make_fs(page_records)
    writer = ReverseRunWriter(fs, "rev", pages_per_file=pages_per_file)
    for value in descending:
        writer.append(value)
    writer.close()
    reader = ReverseRunReader(writer)
    assert list(reader.records_buffered(buffer_pages)) == sorted(values)


@settings(max_examples=100)
@given(st.lists(st.integers(0, 10_000), min_size=1, max_size=60))
def test_disk_clock_monotone(addresses):
    disk = DiskModel()
    last = 0.0
    for address in addresses:
        disk.read_page(address)
        assert disk.elapsed >= last
        last = disk.elapsed
    assert disk.stats.pages_read == len(addresses)


@settings(max_examples=60)
@given(st.lists(st.integers(0, 100), min_size=2, max_size=60))
def test_sequential_never_costlier_than_random(addresses):
    """Reading pages in order never costs more than any other order."""
    ordered = sorted(set(addresses))
    disk_seq = DiskModel()
    for index, address in enumerate(ordered):
        disk_seq.read_page(ordered[0] + index)  # strictly contiguous
    disk_any = DiskModel()
    for address in ordered:
        disk_any.read_page(address)
    assert disk_seq.elapsed <= disk_any.elapsed + 1e-12
