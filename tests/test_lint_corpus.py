"""Corpus-driven tests for the ``repro.lint`` project-invariant linter.

Every fixture under ``tests/lint_corpus/`` declares the findings it
must produce in ``# expect: R00N:line`` header comments (or
``# expect: none``); the parametrized test pins each rule's behaviour
to those exact ``(rule, line)`` pairs, so a rule change that gains or
loses a finding fails loudly instead of silently shifting the gate.

The CLI tests then drive ``python -m repro.lint`` as CI does: the real
tree must be clean (exit 0), a known-bad corpus file must fail (exit 2)
with ``path:line: R00N message`` formatted findings, and directory
walks must skip the deliberately-red corpus.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys

import pytest

from repro.lint import Finding, lint_file, lint_paths, lint_source
from repro.lint.findings import collect_waivers

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
CORPUS_DIR = os.path.join(REPO_ROOT, "tests", "lint_corpus")

_EXPECT_RE = re.compile(r"#\s*expect:\s*(R\d{3}):(\d+)")
_EXPECT_NONE_RE = re.compile(r"#\s*expect:\s*none")


def corpus_files():
    return sorted(
        name for name in os.listdir(CORPUS_DIR) if name.endswith(".py")
    )


def expected_findings(path):
    """``{(rule, line)}`` from the fixture's ``# expect:`` header."""
    expected = set()
    saw_none = False
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            if not line.startswith("#"):
                break
            if _EXPECT_NONE_RE.search(line):
                saw_none = True
            match = _EXPECT_RE.search(line)
            if match:
                expected.add((match.group(1), int(match.group(2))))
    assert saw_none or expected, (
        f"{path} declares no expectations; add '# expect: R00N:line' "
        f"or '# expect: none' headers"
    )
    return expected


@pytest.mark.parametrize("name", corpus_files())
def test_corpus_file_matches_expectations(name):
    path = os.path.join(CORPUS_DIR, name)
    actual = {(f.rule, f.line) for f in lint_file(path)}
    assert actual == expected_findings(path)


def test_corpus_covers_every_rule_both_ways():
    """Each of R001–R007 has at least one bad and one good fixture."""
    bad_rules = set()
    good_only = []
    for name in corpus_files():
        expected = expected_findings(os.path.join(CORPUS_DIR, name))
        if expected:
            bad_rules.update(rule for rule, _ in expected)
        else:
            good_only.append(name)
    for number in range(1, 8):
        rule = f"R00{number}"
        assert rule in bad_rules, f"no known-bad corpus case for {rule}"
        assert any(
            rule.lower()[1:] in name or f"r00{number}" in name
            for name in good_only
        ), f"no known-good corpus case for {rule}"


def _run_lint(*argv):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *argv],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )


def test_cli_repo_tree_is_clean():
    result = _run_lint("src", "tests")
    assert result.returncode == 0, (
        f"linter found problems in the real tree:\n{result.stdout}"
    )
    assert result.stdout.strip() == ""


def test_cli_bad_corpus_file_fails_with_formatted_findings():
    path = os.path.join("tests", "lint_corpus", "r002_bad.py")
    result = _run_lint(path)
    assert result.returncode == 2
    lines = result.stdout.strip().splitlines()
    assert lines, "expected findings on stdout"
    pattern = re.compile(r"^.+:\d+: R\d{3} .+$")
    for line in lines:
        assert pattern.match(line), f"malformed finding line: {line!r}"
    assert any(":7: R002 " in line for line in lines)


def test_cli_subcommand_mirrors_module_entry_point():
    """``repro.cli lint`` is the same gate as ``python -m repro.lint``."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    result = subprocess.run(
        [sys.executable, "-m", "repro.cli", "lint",
         os.path.join("tests", "lint_corpus", "r002_bad.py")],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 2
    assert ":7: R002 " in result.stdout


def test_directory_walk_skips_corpus_fixtures():
    findings = lint_paths([CORPUS_DIR])
    assert findings == []


def test_waiver_requires_reason():
    covered, bad = collect_waivers(
        "x.py",
        [
            "# repro: lint-waive R002 metadata outside the seam",
            "# repro: lint-waive R001",
        ],
    )
    assert covered == {"R002": {1, 2}}
    assert [(f.rule, f.line) for f in bad] == [("R000", 2)]


def test_lint_source_reports_syntax_errors_as_findings():
    findings = lint_source("def broken(:\n", "broken.py")
    assert [f.rule for f in findings] == ["R000"]
    assert findings[0].path == "broken.py"


def test_finding_format_is_stable():
    finding = Finding("src/x.py", 3, "R001", "leak")
    assert finding.format() == "src/x.py:3: R001 leak"


def test_no_import_shadowing_with_analysis_module():
    """``repro.analysis`` (paper math) and ``repro.lint`` (static
    analysis) must stay distinct importable modules (satellite 6)."""
    import repro.analysis
    import repro.lint

    assert repro.analysis.__file__ != repro.lint.__file__
    assert hasattr(repro.analysis, "__doc__")
    assert "run" in repro.analysis.__doc__.lower()
    assert "static" in repro.lint.__doc__.lower()
