"""Unit and property tests for the array-backed binary heaps."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.heaps.binary_heap import (
    HeapEmptyError,
    HeapFullError,
    MaxHeap,
    MinHeap,
    left_child_index,
    parent_index,
    right_child_index,
)


class TestIndexArithmetic:
    def test_root_has_no_parent(self):
        with pytest.raises(ValueError):
            parent_index(0)

    def test_parent_of_children(self):
        for i in range(1, 100):
            assert parent_index(left_child_index(i)) == i
            assert parent_index(right_child_index(i)) == i

    def test_children_are_distinct(self):
        for i in range(100):
            assert left_child_index(i) + 1 == right_child_index(i)

    def test_paper_example_labels(self):
        # Section 3.1.2: node i has parent (i-1)//2, children 2i+1, 2i+2.
        assert parent_index(5) == 2
        assert left_child_index(2) == 5
        assert right_child_index(2) == 6


class TestMinHeapBasics:
    def test_empty_heap_is_falsy(self):
        assert not MinHeap()

    def test_len_tracks_pushes(self):
        heap = MinHeap()
        for i in range(10):
            heap.push(i)
            assert len(heap) == i + 1

    def test_peek_empty_raises(self):
        with pytest.raises(HeapEmptyError):
            MinHeap().peek()

    def test_pop_empty_raises(self):
        with pytest.raises(HeapEmptyError):
            MinHeap().pop()

    def test_replace_empty_raises(self):
        with pytest.raises(HeapEmptyError):
            MinHeap().replace(1)

    def test_peek_returns_min_without_removal(self):
        heap = MinHeap([5, 3, 8])
        assert heap.peek() == 3
        assert len(heap) == 3

    def test_pop_returns_ascending(self):
        heap = MinHeap([5, 1, 4, 2, 3])
        assert [heap.pop() for _ in range(5)] == [1, 2, 3, 4, 5]

    def test_drain_sorted(self):
        heap = MinHeap([9, 7, 8])
        assert list(heap.drain_sorted()) == [7, 8, 9]
        assert not heap

    def test_replace_pops_old_top(self):
        heap = MinHeap([1, 5, 10])
        assert heap.replace(7) == 1
        assert sorted(heap.as_list()) == [5, 7, 10]

    def test_pushpop_short_circuits_smaller_item(self):
        heap = MinHeap([5, 10])
        assert heap.pushpop(1) == 1
        assert len(heap) == 2

    def test_pushpop_on_empty(self):
        heap = MinHeap()
        assert heap.pushpop(3) == 3
        assert not heap

    def test_duplicates_preserved(self):
        heap = MinHeap([2, 2, 1, 1])
        assert list(heap.drain_sorted()) == [1, 1, 2, 2]

    def test_contains(self):
        heap = MinHeap([1, 2, 3])
        assert 2 in heap
        assert 9 not in heap

    def test_clear(self):
        heap = MinHeap([1, 2])
        heap.clear()
        assert len(heap) == 0


class TestMaxHeap:
    def test_pop_returns_descending(self):
        heap = MaxHeap([5, 1, 4, 2, 3])
        assert [heap.pop() for _ in range(5)] == [5, 4, 3, 2, 1]

    def test_peek_is_max(self):
        heap = MaxHeap([93, 88, 82, 66, 20, 42, 7])
        assert heap.peek() == 93

    def test_paper_figure_3_3_insert(self):
        # Figure 3.3: adding 91 to the example max heap; 91 sifts to
        # position 1 (child of the root 93).
        heap = MaxHeap([93, 88, 82, 66, 20, 42, 7])
        heap.push(91)
        layout = heap.as_list()
        assert layout[0] == 93
        assert layout[1] == 91
        assert heap.check_invariant()

    def test_paper_figure_3_4_delete(self):
        # Figure 3.4: deleting the top of the Figure 3.3(c) heap yields
        # 91 at the root and a valid heap.
        heap = MaxHeap([93, 91, 82, 88, 20, 42, 7, 66])
        assert heap.pop() == 93
        assert heap.peek() == 91
        assert heap.check_invariant()


class TestCapacity:
    def test_push_beyond_capacity_raises(self):
        heap = MinHeap(capacity=2)
        heap.push(1)
        heap.push(2)
        with pytest.raises(HeapFullError):
            heap.push(3)

    def test_initial_items_over_capacity_raise(self):
        with pytest.raises(HeapFullError):
            MinHeap([1, 2, 3], capacity=2)

    def test_is_full(self):
        heap = MinHeap([1], capacity=1)
        assert heap.is_full

    def test_unbounded_is_never_full(self):
        heap = MinHeap(range(100))
        assert not heap.is_full

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            MinHeap(capacity=-1)

    def test_replace_works_at_capacity(self):
        heap = MinHeap([1, 2], capacity=2)
        assert heap.replace(5) == 1
        assert heap.is_full


@settings(max_examples=200)
@given(st.lists(st.integers()))
def test_minheap_pop_order_is_sorted(values):
    heap = MinHeap(values)
    assert list(heap.drain_sorted()) == sorted(values)


@settings(max_examples=200)
@given(st.lists(st.integers()))
def test_maxheap_pop_order_is_reverse_sorted(values):
    heap = MaxHeap(values)
    assert list(heap.drain_sorted()) == sorted(values, reverse=True)


@settings(max_examples=100)
@given(st.lists(st.integers(), min_size=1))
def test_heapify_establishes_invariant(values):
    assert MinHeap(values).check_invariant()
    assert MaxHeap(values).check_invariant()


@settings(max_examples=100)
@given(
    st.lists(st.integers(), min_size=1),
    st.lists(st.integers(), min_size=1, max_size=20),
)
def test_interleaved_push_pop_keeps_invariant(initial, pushes):
    heap = MinHeap(initial)
    for value in pushes:
        heap.push(value)
        heap.pop()
        assert heap.check_invariant()


@settings(max_examples=100)
@given(st.lists(st.integers(), min_size=1), st.integers())
def test_replace_equals_pop_then_push(values, new):
    a = MinHeap(values)
    b = MinHeap(values)
    popped_a = a.replace(new)
    popped_b = b.pop()
    b.push(new)
    assert popped_a == popped_b
    assert sorted(a.as_list()) == sorted(b.as_list())
