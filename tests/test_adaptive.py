"""Tests for the adaptive heuristic and config advisor (Section 7.1)."""

import itertools
import random

import pytest

from repro.core.adaptive import (
    AdaptiveInput,
    Trend,
    classify_trend,
    recommend_config,
)
from repro.core.config import RECOMMENDED, TwoWayConfig
from repro.core.heuristics import HeuristicContext, Side, make_input_heuristic
from repro.core.two_way import TwoWayReplacementSelection
from repro.workloads.generators import DISTRIBUTIONS, make_input


def ctx(**overrides):
    defaults = dict(rng=random.Random(0))
    defaults.update(overrides)
    return HeuristicContext(**defaults)


class TestClassifyTrend:
    def test_ascending(self):
        assert classify_trend(list(range(20))) is Trend.ASCENDING

    def test_descending(self):
        assert classify_trend(list(range(20, 0, -1))) is Trend.DESCENDING

    def test_random_is_unstructured(self):
        rng = random.Random(1)
        sample = [rng.random() for _ in range(50)]
        assert classify_trend(sample) is Trend.UNSTRUCTURED

    def test_alternating_is_unstructured(self):
        sample = [0, 9, 1, 8, 2, 7, 3, 6]
        assert classify_trend(sample) is Trend.UNSTRUCTURED

    def test_tiny_sample_is_unstructured(self):
        assert classify_trend([1, 2]) is Trend.UNSTRUCTURED

    def test_threshold_controls_sensitivity(self):
        noisy_up = [0, 1, 0, 2, 3, 2, 4, 5, 4, 6, 7, 6, 8]
        assert classify_trend(noisy_up, threshold=0.3) is Trend.ASCENDING
        assert classify_trend(noisy_up, threshold=0.9) is Trend.UNSTRUCTURED


class TestAdaptiveInput:
    def test_registered(self):
        assert isinstance(make_input_heuristic("adaptive"), AdaptiveInput)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            AdaptiveInput(threshold=0.0)

    def test_ascending_sample_routes_top(self):
        h = AdaptiveInput()
        side = h.choose(5, ctx(input_sample=list(range(16))))
        assert side is Side.TOP
        assert h.last_trend is Trend.ASCENDING

    def test_descending_sample_routes_bottom(self):
        h = AdaptiveInput()
        side = h.choose(5, ctx(input_sample=list(range(16, 0, -1))))
        assert side is Side.BOTTOM
        assert h.last_trend is Trend.DESCENDING

    def test_unstructured_falls_back_to_mean(self):
        h = AdaptiveInput()
        context = ctx(input_sample=[5, 1, 9, 2, 8], input_mean=5.0)
        assert h.choose(9, context) is Side.TOP
        assert h.choose(1, context) is Side.BOTTOM

    @pytest.mark.parametrize("dataset", sorted(DISTRIBUTIONS))
    def test_correct_runs_on_every_distribution(self, dataset):
        config = TwoWayConfig(input_heuristic="adaptive")
        data = list(make_input(dataset, 4_000, seed=3))
        algo = TwoWayReplacementSelection(200, config)
        runs = list(algo.generate_runs(data))
        for run in runs:
            assert run == sorted(run)
        assert sorted(itertools.chain(*runs)) == sorted(data)

    def test_single_run_on_monotone_inputs(self):
        config = TwoWayConfig(input_heuristic="adaptive")
        for dataset in ("sorted", "reverse_sorted"):
            data = list(make_input(dataset, 4_000, seed=3))
            algo = TwoWayReplacementSelection(200, config)
            assert algo.count_runs(data) == 1, dataset


class TestRecommendConfig:
    def test_none_gives_recommended(self):
        assert recommend_config(None) == RECOMMENDED

    def test_random_minimises_buffers(self):
        config = recommend_config("random")
        assert config.buffer_fraction < RECOMMENDED.buffer_fraction

    def test_mixed_uses_both_buffers_large(self):
        config = recommend_config("mixed_balanced")
        assert config.buffer_setup == "both"
        assert config.buffer_fraction >= 0.2

    def test_unknown_distribution(self):
        with pytest.raises(ValueError, match="unknown distribution"):
            recommend_config("zipf")

    def test_recommendations_beat_recommended_where_claimed(self):
        """The mixed-tuned config is at least as good as the default."""
        data = list(make_input("mixed_balanced", 20_000, seed=2))
        tuned = TwoWayReplacementSelection(500, recommend_config("mixed_balanced"))
        default = TwoWayReplacementSelection(500, RECOMMENDED)
        assert tuned.count_runs(data) <= default.count_runs(iter(data))
