"""Golden-output tests for the CLI report formats.

Scripts parse ``repro.cli sort --report`` / ``runs --report`` output,
so the exact text is a contract: these tests lock it against
checked-in fixtures in ``tests/golden/``.  Real wall-clock fields are
normalised to ``<WALL>`` (everything else — record counts, run counts,
cpu op counts, simulated times — is deterministic for a fixed dataset).

To update the fixtures intentionally after a deliberate format change::

    REPRO_REGEN_GOLDEN=1 python -m pytest tests/test_cli_golden.py
"""

import os
import re
from pathlib import Path

import pytest

from repro.cli import main
from repro.workloads.generators import make_input

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Real elapsed-time fields; everything else in a report is deterministic.
_WALL_RE = re.compile(r"(wall=)\d+\.\d+s")


def normalise(text: str) -> str:
    """Replace volatile wall-clock values with stable placeholders."""
    return _WALL_RE.sub(r"\1<WALL>s", text)


@pytest.fixture()
def dataset(tmp_path):
    """The pinned input every golden fixture was generated from."""
    path = tmp_path / "golden-input.txt"
    records = make_input("random", 2_000, seed=42)
    path.write_text("".join(f"{value}\n" for value in records))
    return path


def check_golden(name: str, got: str) -> None:
    golden_path = GOLDEN_DIR / name
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        golden_path.write_text(got)
        return
    assert golden_path.exists(), (
        f"missing fixture {golden_path}; regenerate with "
        f"REPRO_REGEN_GOLDEN=1 python -m pytest tests/test_cli_golden.py"
    )
    expected = golden_path.read_text()
    assert got == expected, (
        f"{name} drifted from the checked-in fixture; if the format "
        f"change is intentional, regenerate with REPRO_REGEN_GOLDEN=1"
    )


class TestSortReportGolden:
    def test_sort_report_text(self, dataset, tmp_path, capsys):
        code = main(
            [
                "sort",
                "--memory",
                "200",
                "--fan-in",
                "4",
                "--merge-buffer",
                "128",
                "--report",
                str(dataset),
                "-o",
                str(tmp_path / "out.txt"),
            ]
        )
        assert code == 0
        check_golden("sort_report.txt", normalise(capsys.readouterr().err))

    def test_sort_parallel_report_text(self, dataset, tmp_path, capsys):
        code = main(
            [
                "sort",
                "--memory",
                "400",
                "--workers",
                "2",
                "--fan-in",
                "4",
                "--merge-buffer",
                "128",
                "--report",
                str(dataset),
                "-o",
                str(tmp_path / "out.txt"),
            ]
        )
        assert code == 0
        check_golden(
            "sort_parallel_report.txt", normalise(capsys.readouterr().err)
        )


class TestRunsReportGolden:
    def test_runs_report_text(self, dataset, capsys):
        assert main(["runs", "--memory", "200", "--report", str(dataset)]) == 0
        check_golden("runs_report.txt", normalise(capsys.readouterr().out))

    def test_runs_plain_text(self, dataset, capsys):
        assert main(["runs", "--memory", "200", str(dataset)]) == 0
        check_golden("runs_plain.txt", normalise(capsys.readouterr().out))
