"""Smoke tests for the experiment harnesses (scaled way down).

Each experiment module is exercised end-to-end at a tiny scale so the
full-size benchmark parameters stay in benchmarks/; these tests verify
the plumbing (types, shapes, monotonicities), not the paper numbers.
"""

import pytest

from repro.experiments import EXPERIMENTS, common
from repro.experiments import (
    fig_3_8_model,
    table_5_2_anova_random,
    table_5_6_anova_mixed,
    table_5_11_anova_imbalanced,
    fig_5_4_buffer_size,
    fig_6_1_fan_in,
    fig_6_2_random_memory,
    fig_6_6_alternating,
    fig_6_7_reverse,
    table_2_1_polyphase,
    table_5_13_run_lengths,
)


class TestRegistry:
    def test_experiment_list_importable(self):
        import importlib

        for name in EXPERIMENTS:
            module = importlib.import_module(f"repro.experiments.{name}")
            assert hasattr(module, "run")
            assert hasattr(module, "main")


class TestCommon:
    def test_timing_row_speedup(self):
        row = common.TimingRow(
            x=1,
            rs_run_time=1.0,
            rs_total_time=4.0,
            twrs_run_time=1.0,
            twrs_total_time=2.0,
            rs_runs=10,
            twrs_runs=2,
        )
        assert row.speedup == pytest.approx(2.0)

    def test_timing_table_formats_all_rows(self):
        rows = [
            common.TimingRow(1, 1.0, 2.0, 1.0, 2.0, 3, 3),
            common.TimingRow(2, 1.0, 2.0, 1.0, 2.0, 3, 3),
        ]
        text = common.timing_table(rows, "x")
        assert len(text.splitlines()) == 3

    def test_compare_rs_twrs_shapes(self):
        records = common.dataset_records("reverse_sorted", 3_000, seed=1)
        row = common.compare_rs_twrs("point", records, 200)
        assert row.twrs_runs == 1
        assert row.rs_runs == 15


class TestHarnesses:
    def test_table_2_1(self):
        steps = table_2_1_polyphase.run()
        assert steps[-1].counts.count(0) == 5

    def test_fig_3_8_small(self):
        fits = fig_3_8_model.run(num_runs=2, cells=64, dt=2e-3)
        assert len(fits) == 2
        assert fits[1].max_abs_error <= fits[0].max_abs_error + 0.05

    def test_fig_5_4_small(self):
        points = fig_5_4_buffer_size.run(
            fractions=(0.002, 0.2),
            memory_capacity=200,
            input_records=8_000,
            seeds=(1,),
        )
        assert points[0].relative_run_length > points[1].relative_run_length

    def test_fig_6_1_small(self):
        points = fig_6_1_fan_in.run(
            fan_ins=(2, 4), num_runs=8, run_records=128, merge_memory=1_024
        )
        assert all(p.merge_io_time > 0 for p in points)

    def test_fig_6_2_small(self):
        rows = fig_6_2_random_memory.run(
            memories=(100, 400), input_records=5_000
        )
        assert rows[1].rs_total_time < rows[0].rs_total_time

    def test_fig_6_6_small(self):
        rows = fig_6_6_alternating.run(
            sections_sweep=(2,), input_records=10_000, memory_capacity=200
        )
        assert rows[0].speedup > 1.0

    def test_fig_6_7_small(self):
        rows = fig_6_7_reverse.run(input_sizes=(5_000,), memory_capacity=200)
        assert rows[0].twrs_runs == 1

    def test_table_5_2_small(self):
        from repro.stats.factorial import FactorialSettings

        tiny = FactorialSettings(
            memory_capacity=200,
            input_records=4_000,
            seeds=(1, 2),
            buffer_setups=("input", "both"),
            buffer_sizes=(0.002, 0.2),
            input_heuristics=("mean", "random"),
            output_heuristics=("random", "balancing"),
        )
        result = table_5_2_anova_random.run(tiny)
        assert result.dominant_factor in ("i", "j", "k", "l")
        assert 0.0 <= result.j_only_model.r_squared <= 1.0

    def test_table_5_6_small(self):
        from repro.stats.factorial import FactorialSettings

        tiny = FactorialSettings(
            memory_capacity=300,
            input_records=5_000,
            seeds=(1, 2),
            buffer_setups=("both", "victim"),
            buffer_sizes=(0.02, 0.2),
            input_heuristics=("mean", "random"),
            output_heuristics=("random", "balancing"),
        )
        result = table_5_6_anova_mixed.run(tiny)
        assert result.minimum_runs >= 1
        assert result.best_input_heuristics
        assert result.assumptions is not None

    def test_table_5_11_small(self):
        from repro.stats.factorial import FactorialSettings

        tiny = FactorialSettings(
            memory_capacity=300,
            input_records=5_000,
            seeds=(1, 2),
            buffer_setups=("input", "both"),
            buffer_sizes=(0.02, 0.2),
            input_heuristics=("mean", "random"),
            output_heuristics=("random", "alternate"),
        )
        result = table_5_11_anova_imbalanced.run(tiny)
        assert set(result.setup_means) == {"input", "both"}
        assert result.minimum_runs >= 1

    def test_table_5_13_small(self):
        rows = table_5_13_run_lengths.run(
            memory_capacity=200, input_records=10_000
        )
        table = {r.dataset: r for r in rows}
        assert table["reverse_sorted"].rs == pytest.approx(1.0, abs=0.1)
        assert table["reverse_sorted"].cfg3 == pytest.approx(50.0)
