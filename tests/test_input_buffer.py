"""Tests for the FIFO input buffer (Section 4.2)."""

import pytest

from repro.core.input_buffer import SHADOW_WINDOW, InputBuffer


class TestFifo:
    def test_preserves_order(self):
        buffer = InputBuffer(iter([1, 2, 3, 4]), capacity=2)
        assert [buffer.next() for _ in range(4)] == [1, 2, 3, 4]

    def test_eof_returns_none(self):
        buffer = InputBuffer(iter([1]), capacity=4)
        assert buffer.next() == 1
        assert buffer.next() is None

    def test_bool_reflects_availability(self):
        buffer = InputBuffer(iter([1]), capacity=1)
        assert buffer
        buffer.next()
        assert buffer.next() is None
        assert not buffer

    def test_negative_capacity(self):
        with pytest.raises(ValueError):
            InputBuffer(iter([]), capacity=-1)

    def test_records_read_counter(self):
        buffer = InputBuffer(iter(range(10)), capacity=3)
        assert buffer.records_read == 3  # eager prefetch
        buffer.next()
        assert buffer.records_read == 4


class TestStatistics:
    def test_mean_of_buffer_contents(self):
        buffer = InputBuffer(iter([40, 50, 39, 51, 99]), capacity=4)
        # Paper example (Section 4.5): mean of {40, 50, 39, 51} = 45.
        assert buffer.mean() == pytest.approx(45.0)

    def test_mean_advances_with_fifo(self):
        buffer = InputBuffer(iter([40, 50, 39, 51, 38]), capacity=4)
        buffer.next()  # consume 40, prefetch 38
        assert buffer.mean() == pytest.approx((50 + 39 + 51 + 38) / 4)

    def test_median_lower_middle(self):
        buffer = InputBuffer(iter([1, 3, 5, 7]), capacity=4)
        assert buffer.median() == 3

    def test_median_odd(self):
        buffer = InputBuffer(iter([9, 1, 5]), capacity=3)
        assert buffer.median() == 5

    def test_empty_source_statistics_none(self):
        buffer = InputBuffer(iter([]), capacity=4)
        assert buffer.mean() is None
        assert buffer.median() is None


class TestMemoization:
    def test_statistics_not_computed_until_asked(self):
        buffer = InputBuffer(iter(range(100)), capacity=8)
        for _ in range(50):
            buffer.next()
        assert buffer.mean_computations == 0
        assert buffer.median_computations == 0

    def test_mean_computed_once_per_generation(self):
        buffer = InputBuffer(iter(range(100)), capacity=8)
        first = buffer.mean()
        assert buffer.mean() == first
        assert buffer.mean_computations == 1
        buffer.next()  # mutation invalidates the cache
        buffer.mean()
        assert buffer.mean_computations == 2

    def test_median_computed_once_per_generation(self):
        buffer = InputBuffer(iter([9, 1, 5, 7]), capacity=4)
        assert buffer.median() == 5
        assert buffer.median() == 5
        assert buffer.median_computations == 1
        buffer.next()
        buffer.median()
        assert buffer.median_computations == 2

    def test_cache_invalidated_on_mutation(self):
        buffer = InputBuffer(iter([10, 20, 30, 40]), capacity=2)
        assert buffer.mean() == pytest.approx(15.0)
        buffer.next()  # buffer now {20, 30}
        assert buffer.mean() == pytest.approx(25.0)

    def test_generation_advances_with_reads(self):
        buffer = InputBuffer(iter(range(10)), capacity=3)
        before = buffer.generation
        buffer.next()
        assert buffer.generation > before

    def test_sample_memoized_between_mutations(self):
        buffer = InputBuffer(iter(range(10)), capacity=3)
        assert buffer.sample() is buffer.sample()
        snapshot = buffer.sample()
        buffer.next()
        assert buffer.sample() is not snapshot


class TestShadowWindow:
    def test_zero_capacity_passthrough(self):
        buffer = InputBuffer(iter([3, 1, 2]), capacity=0)
        assert [buffer.next() for _ in range(3)] == [3, 1, 2]

    def test_zero_capacity_keeps_sample(self):
        buffer = InputBuffer(iter(range(100)), capacity=0)
        for _ in range(50):
            buffer.next()
        sample = buffer.sample()
        assert len(sample) == SHADOW_WINDOW
        assert sample == list(range(50 - SHADOW_WINDOW, 50))

    def test_zero_capacity_mean_defined_after_reads(self):
        buffer = InputBuffer(iter([10, 20]), capacity=0)
        buffer.next()
        assert buffer.mean() == pytest.approx(10.0)
        buffer.next()
        assert buffer.mean() == pytest.approx(15.0)
