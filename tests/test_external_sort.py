"""Integration tests for the full external-sort pipeline (Chapters 2, 6)."""

import pytest

from repro.core.config import RECOMMENDED
from repro.core.two_way import TwoWayReplacementSelection
from repro.iosim.disk import DiskGeometry, DiskModel
from repro.iosim.files import SimulatedFileSystem
from repro.runs.load_sort_store import LoadSortStore
from repro.runs.replacement_selection import ReplacementSelection
from repro.sort.external import ExternalSort
from repro.workloads.generators import (
    make_input,
    mixed_balanced_input,
    random_input,
    reverse_sorted_input,
)


def small_fs():
    return SimulatedFileSystem(
        DiskModel(geometry=DiskGeometry(page_records=64))
    )


class TestCorrectness:
    @pytest.mark.parametrize(
        "generator_factory",
        [
            lambda: ReplacementSelection(200),
            lambda: TwoWayReplacementSelection(200, RECOMMENDED),
            lambda: LoadSortStore(200),
        ],
        ids=["RS", "2WRS", "LSS"],
    )
    def test_sorts_random_input(self, generator_factory):
        data = list(random_input(5_000, seed=1))
        pipeline = ExternalSort(generator_factory(), fs=small_fs(), fan_in=4)
        out, report = pipeline.sort(data)
        assert out.read_all() == sorted(data)
        assert report.records == 5_000

    @pytest.mark.parametrize(
        "dataset",
        ["sorted", "reverse_sorted", "alternating", "mixed_balanced"],
    )
    def test_sorts_every_distribution_with_2wrs(self, dataset):
        data = list(make_input(dataset, 4_000, seed=2))
        generator = TwoWayReplacementSelection(150, RECOMMENDED)
        pipeline = ExternalSort(generator, fs=small_fs(), fan_in=4)
        out, _ = pipeline.sort(data)
        assert out.read_all() == sorted(data)

    def test_empty_input(self):
        pipeline = ExternalSort(ReplacementSelection(10), fs=small_fs())
        out, report = pipeline.sort([])
        assert out.read_all() == []
        assert report.runs == 0

    def test_input_fits_in_memory(self):
        pipeline = ExternalSort(ReplacementSelection(100), fs=small_fs())
        out, report = pipeline.sort([3, 1, 2])
        assert out.read_all() == [1, 2, 3]
        assert report.runs == 1

    def test_pipeline_reusable_for_multiple_sorts(self):
        pipeline = ExternalSort(ReplacementSelection(50), fs=small_fs())
        first, _ = pipeline.sort(list(range(200, 0, -1)))
        second, _ = pipeline.sort([5, 1, 9])
        assert first.read_all() == list(range(1, 201))
        assert second.read_all() == [1, 5, 9]


class TestReporting:
    def test_report_phases_have_positive_time(self):
        data = list(random_input(5_000, seed=1))
        pipeline = ExternalSort(ReplacementSelection(100), fs=small_fs())
        _, report = pipeline.sort(data)
        assert report.run_phase.time > 0
        assert report.merge_phase.time > 0
        assert report.total_time == pytest.approx(
            report.run_phase.time + report.merge_phase.time
        )

    def test_report_counts_runs(self):
        data = list(reverse_sorted_input(2_000))
        pipeline = ExternalSort(ReplacementSelection(100), fs=small_fs())
        _, report = pipeline.sort(data)
        assert report.runs == 20
        assert report.average_run_length == pytest.approx(100.0)

    def test_cpu_time_scales_with_op_cost(self):
        data = list(random_input(2_000, seed=1))
        slow = ExternalSort(
            ReplacementSelection(100), fs=small_fs(), cpu_op_time=1e-6
        )
        _, slow_report = slow.sort(data)
        fast = ExternalSort(
            ReplacementSelection(100), fs=small_fs(), cpu_op_time=1e-9
        )
        _, fast_report = fast.sort(data)
        assert slow_report.run_phase.cpu_time > fast_report.run_phase.cpu_time
        assert slow_report.run_phase.cpu_ops == fast_report.run_phase.cpu_ops


class TestPaperShapes:
    def test_reverse_sorted_2wrs_beats_rs(self):
        """Figure 6.7's claim at test scale."""
        data = list(reverse_sorted_input(20_000, seed=1))
        _, rs = ExternalSort(
            ReplacementSelection(500), fs=small_fs()
        ).sort(data)
        _, twrs = ExternalSort(
            TwoWayReplacementSelection(500, RECOMMENDED), fs=small_fs()
        ).sort(data)
        assert twrs.runs == 1
        assert twrs.total_time < rs.total_time

    def test_mixed_2wrs_beats_rs(self):
        """Figure 6.4's claim at test scale."""
        data = list(mixed_balanced_input(20_000, seed=1, noise=1000))
        _, rs = ExternalSort(
            ReplacementSelection(500), fs=small_fs()
        ).sort(data)
        _, twrs = ExternalSort(
            TwoWayReplacementSelection(500, RECOMMENDED), fs=small_fs()
        ).sort(data)
        assert twrs.runs < rs.runs
        assert twrs.total_time < rs.total_time

    def test_2wrs_persists_decreasing_streams_reversed(self):
        """Reverse-file chunks appear on disk for decreasing streams."""
        fs = small_fs()
        data = list(reverse_sorted_input(3_000, seed=1))
        pipeline = ExternalSort(
            TwoWayReplacementSelection(200, RECOMMENDED), fs=fs
        )
        out, report = pipeline.sort(data)
        assert out.read_all() == sorted(data)
        # The run phase wrote pages (runs hit the disk, not memory).
        assert report.run_phase.disk.pages_written > 0
