"""Fault-injection harness tests and the fault-matrix stress sweep.

The unit half pins the harness's own contract (deterministic counting,
env-var relay, audit trail); the matrix half drives the CLI through
``fault point x backend x format`` and asserts the ISSUE-4 acceptance
property for every combination: the faulted sort fails *cleanly*
(``SortError`` semantics, exit code 1, no stray temp files in
non-durable mode), and rerunning with ``--resume`` produces output
byte-identical (SHA-256) to the fault-free run.

A small smoke subset runs in the default (tier-1) suite; the full
sweep is marked ``stress`` and runs in the dedicated CI job
(``-m "stress or slow"``).  Corpora derive from ``REPRO_STRESS_SEED``
like the property sweep does from ``REPRO_PROPERTY_SEED``.
"""

import os
import random

import pytest

from _helpers import files_under, sha256_file, stress_case, stress_seed
from repro.cli import main
from repro.core.config import GeneratorSpec
from repro.core.records import INT
from repro.engine.block_io import open_text
from repro.engine.errors import SortError
from repro.merge.kway import kway_merge
from repro.sort.spill import FileSpillSort
from repro.testing import faults
from repro.testing.faults import (
    FAULT_PLAN_ENV,
    FaultInjected,
    FaultPlan,
    FaultyFile,
    FaultyFormat,
    FaultState,
    activate,
    activate_from_env,
    deactivate,
)


# ---------------------------------------------------------------------------
# FaultPlan / FaultyFile / FaultyFormat units
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_validates_fields(self):
        with pytest.raises(ValueError):
            FaultPlan(op="chmod", nth=1, kind="raise")
        with pytest.raises(ValueError):
            FaultPlan(op="write", nth=1, kind="explode")
        with pytest.raises(ValueError):
            FaultPlan(op="write", nth=0, kind="raise")

    def test_json_round_trip(self):
        plan = FaultPlan(op="read", nth=7, kind="bit_flip",
                         path_substring="shard-")
        assert FaultPlan.from_json(plan.to_json()) == plan
        with pytest.raises(ValueError):
            FaultPlan.from_json("{broken")

    def test_describe_names_everything(self):
        text = FaultPlan(op="write", nth=3, kind="raise",
                         path_substring="run-").describe()
        assert "write" in text and "#3" in text and "run-" in text


class TestFaultyFile:
    def faulty(self, tmp_path, plan, text=""):
        path = tmp_path / "f.txt"
        if text:
            path.write_text(text)
        state = FaultState(plan)
        handle = open(path, "r+" if text else "w", encoding="utf-8")
        return FaultyFile(handle, str(path), state), path, state

    def test_nth_write_raises(self, tmp_path):
        plan = FaultPlan(op="write", nth=2, kind="raise")
        f, path, state = self.faulty(tmp_path, plan)
        f.write("a\n")
        with pytest.raises(FaultInjected):
            f.write("b\n")
        f.close()
        assert path.read_text() == "a\n"
        assert state.fired

    def test_short_write_tears_payload(self, tmp_path):
        plan = FaultPlan(op="write", nth=1, kind="short_write")
        f, path, _ = self.faulty(tmp_path, plan)
        with pytest.raises(FaultInjected):
            f.write("0123456789")
        f.close()
        assert path.read_text() == "01234"

    def test_bit_flip_corrupts_silently(self, tmp_path):
        plan = FaultPlan(op="write", nth=1, kind="bit_flip")
        f, path, _ = self.faulty(tmp_path, plan)
        f.write("7\n")
        f.write("8\n")  # later writes untouched
        f.close()
        assert path.read_text() == "0\n8\n"

    def test_truncate_drops_tail_writes(self, tmp_path):
        plan = FaultPlan(op="write", nth=2, kind="truncate")
        f, path, _ = self.faulty(tmp_path, plan)
        for text in ("a\n", "b\n", "c\n"):
            f.write(text)
        f.close()
        assert path.read_text() == "a\n"

    def test_nth_read_raises(self, tmp_path):
        plan = FaultPlan(op="read", nth=3, kind="raise")
        f, _, _ = self.faulty(tmp_path, plan, text="1\n2\n3\n4\n")
        assert next(f) == "1\n"
        assert next(f) == "2\n"
        with pytest.raises(FaultInjected):
            next(f)
        f.close()

    def test_read_truncate_is_early_eof(self, tmp_path):
        plan = FaultPlan(op="read", nth=2, kind="truncate")
        f, _, _ = self.faulty(tmp_path, plan, text="1\n2\n3\n")
        assert list(f) == ["1\n"]
        f.close()

    def test_read_bit_flip_corrupts_line(self, tmp_path):
        plan = FaultPlan(op="read", nth=2, kind="bit_flip")
        f, _, _ = self.faulty(tmp_path, plan, text="11\n11\n11\n")
        assert list(f) == ["11\n", "01\n", "11\n"]
        f.close()

    def test_path_substring_filter(self, tmp_path):
        plan = FaultPlan(op="write", nth=1, kind="raise",
                         path_substring="other")
        f, path, state = self.faulty(tmp_path, plan)
        f.write("safe\n")  # path does not match; never counted
        f.close()
        assert state.calls == 0
        assert path.read_text() == "safe\n"

    def test_audit_trail_tracks_leaks(self, tmp_path):
        state = FaultState(FaultPlan(op="write", nth=99, kind="raise"))
        a = FaultyFile(open(tmp_path / "a", "w"), "a", state)
        b = FaultyFile(open(tmp_path / "b", "w"), "b", state)
        a.close()
        assert state.leaked() == ["b"]
        b.close()
        assert state.leaked() == []


class TestActivation:
    def test_activate_installs_seam_and_env(self, tmp_path):
        plan = FaultPlan(op="open", nth=1, kind="raise",
                         path_substring="victim")
        with activate(plan) as state:
            assert FaultPlan.from_json(os.environ[FAULT_PLAN_ENV]) == plan
            with open_text(str(tmp_path / "ok.txt"), "w") as handle:
                handle.write("1\n")
            with pytest.raises(FaultInjected):
                # repro: lint-waive R001 call is asserted to raise; no handle is ever created
                open_text(str(tmp_path / "victim.txt"), "w")
            assert state.fired
        assert FAULT_PLAN_ENV not in os.environ
        # Seam restored: opens are plain files again.
        with open_text(str(tmp_path / "after.txt"), "w") as handle:
            assert not isinstance(handle, FaultyFile)

    def test_activate_from_env(self, tmp_path):
        plan = FaultPlan(op="write", nth=1, kind="raise")
        os.environ[FAULT_PLAN_ENV] = plan.to_json()
        try:
            state = activate_from_env()
            assert state is not None and state.plan == plan
            assert activate_from_env() is state  # idempotent
        finally:
            deactivate()
        assert activate_from_env() is None

    def test_disarms_even_when_fault_escapes(self, tmp_path):
        plan = FaultPlan(op="open", nth=1, kind="raise")
        with pytest.raises(FaultInjected):
            with activate(plan):
                # repro: lint-waive R001 call is asserted to raise; no handle is ever created
                open_text(str(tmp_path / "f.txt"), "w")
        assert faults._ACTIVE is None


class TestFaultyFormat:
    def test_decode_fault_at_nth_block(self):
        fmt = FaultyFormat(INT, fail_decode_at=2)
        assert fmt.decode_block(["1\n", "2\n"]) == [1, 2]
        with pytest.raises(FaultInjected):
            fmt.decode_block(["3\n"])

    def test_encode_fault_and_delegation(self):
        fmt = FaultyFormat(INT, fail_encode_at=1)
        assert fmt.numeric and fmt.blank_input_skippable
        assert fmt.decode("5") == 5 and fmt.encode(5) == "5"
        assert fmt.key(5) == 5
        with pytest.raises(FaultInjected):
            fmt.encode_block([1, 2])


# ---------------------------------------------------------------------------
# kway_merge handle-leak regression (ISSUE 4 satellite)
# ---------------------------------------------------------------------------


class TestMergeReaderLeaks:
    def test_raising_stream_closes_other_generators(self):
        closed = []

        def reader(index, data):
            try:
                yield from data
            finally:
                closed.append(index)

        def exploding():
            yield 0
            raise FaultInjected("reader died mid-merge")

        with pytest.raises(FaultInjected):
            list(kway_merge([
                reader(0, [1, 4, 7]), exploding(), reader(2, [2, 5, 8]),
            ]))
        assert sorted(closed) == [0, 2]

    def test_abandoned_merge_closes_streams(self):
        closed = []

        def reader(index, data):
            try:
                yield from data
            finally:
                closed.append(index)

        merged = kway_merge([reader(0, [1, 3]), reader(1, [2, 4])])
        assert next(merged) == 1
        merged.close()
        assert sorted(closed) == [0, 1]

    def test_spill_merge_read_fault_leaks_no_handles(self, tmp_path):
        """The FaultyFile-based regression: a reader raising mid-merge
        must not leave the other runs' file handles open, and the
        backend must still clean its temp directory."""
        data = [((i * 613) % 500) for i in range(400)]
        sorter = FileSpillSort(
            GeneratorSpec(algorithm="rs", memory=32).build(),
            fan_in=4, buffer_records=8, tmp_dir=str(tmp_path),
        )
        plan = FaultPlan(op="read", nth=90, kind="raise",
                         path_substring="run-")
        with activate(plan) as state:
            with pytest.raises(FaultInjected):
                list(sorter.sort(iter(data)))
        assert state.fired
        assert state.leaked() == []
        assert files_under(tmp_path) == []


# ---------------------------------------------------------------------------
# fault matrix: fault point x backend x format
# ---------------------------------------------------------------------------


def make_corpus(tmp_path, fmt, n, seed):
    """A deterministic corpus file for one matrix case."""
    rng = random.Random(stress_seed("fault-matrix", fmt, n, seed))
    if fmt == "int":
        lines = [str(rng.randint(-10**6, 10**6)) for _ in range(n)]
    elif fmt == "str":
        alphabet = "abcdefghijklmnopqrstuvwxyz0123456789 _-"
        lines = [
            "".join(rng.choice(alphabet) for _ in range(rng.randint(1, 24)))
            for _ in range(n)
        ]
    elif fmt == "csv":
        lines = [
            f"row{rng.randint(0, n)},{rng.randint(-500, 500)},"
            f"{rng.random():.6f}"
            for _ in range(n)
        ]
    else:  # pragma: no cover - guarded by the parametrize lists
        raise AssertionError(fmt)
    path = tmp_path / f"in-{fmt}.txt"
    path.write_text("".join(line + "\n" for line in lines))
    return path


def format_args(fmt):
    return ["--format", "csv", "--key", "1"] if fmt == "csv" else (
        ["--format", fmt] if fmt != "int" else []
    )


def run_matrix_case(
    tmp_path, fmt, workers, plan, records=600, memory=16, binary=False,
    codec="none",
):
    """One acceptance check: faulted run fails cleanly, resume matches."""
    case = dict(fmt=fmt, workers=workers, plan=plan.describe(),
                binary=binary, codec=codec)
    source = make_corpus(tmp_path, fmt, records, workers)
    base = ["sort", "--memory", str(memory), "--fan-in", "4",
            "--merge-buffer", "8", *format_args(fmt)]
    if workers > 1:
        base += ["--workers", str(workers)]
    if binary:
        base += ["--binary-spill"]
    if codec != "none":
        base += ["--spill-codec", codec]
    ref = tmp_path / "ref.txt"
    assert main(base + [str(source), "-o", str(ref)]) == 0, stress_case(**case)

    out = tmp_path / "out.txt"
    durable = base + ["--resume", "--checksum", str(source), "-o", str(out)]
    with activate(plan) as state:
        code = main(durable)
    # Workers count their own faults in their own processes, so the
    # parent-side state only proves firing for serial cases; for
    # parallel ones the nonzero exit below is the evidence.
    assert state.fired or workers > 1, (
        "fault never fired — dead matrix case: " + stress_case(**case)
    )
    assert code == 1, (
        "faulted sort must fail cleanly (exit 1): " + stress_case(**case)
    )
    work_dir = tmp_path / "out.txt.sortwork"
    assert work_dir.is_dir(), (
        "durable failure must keep its work dir: " + stress_case(**case)
    )

    assert main(durable) == 0, "resume failed: " + stress_case(**case)
    assert sha256_file(out) == sha256_file(ref), (
        "resumed output differs from the fault-free run: "
        + stress_case(**case)
    )
    assert not work_dir.exists(), (
        "successful resume must remove the work dir: " + stress_case(**case)
    )


SERIAL_FAULTS = [
    FaultPlan(op="write", nth=3, kind="raise", path_substring="run-"),
    FaultPlan(op="write", nth=9, kind="short_write", path_substring="run-"),
    FaultPlan(op="write", nth=2, kind="raise", path_substring="merge-"),
    FaultPlan(op="write", nth=1, kind="short_write", path_substring="merge-"),
    FaultPlan(op="write", nth=5, kind="bit_flip", path_substring="run-"),
    FaultPlan(op="write", nth=6, kind="truncate", path_substring="run-"),
    FaultPlan(op="read", nth=120, kind="raise", path_substring="run-"),
    FaultPlan(op="open", nth=4, kind="raise", path_substring="run-"),
]

PARALLEL_FAULTS = [
    FaultPlan(op="write", nth=1, kind="raise", path_substring="shard-001"),
    FaultPlan(op="write", nth=2, kind="raise", path_substring="part-"),
    FaultPlan(op="write", nth=3, kind="bit_flip", path_substring="shard-000"),
    FaultPlan(op="write", nth=2, kind="truncate", path_substring="part-001"),
    FaultPlan(op="read", nth=40, kind="raise", path_substring="shard-"),
]


class TestFaultMatrixSmoke:
    """Fast default-suite slice of the matrix (serial + one parallel)."""

    @pytest.mark.parametrize("plan", SERIAL_FAULTS[:3],
                             ids=lambda p: p.describe())
    def test_serial_int(self, tmp_path, plan):
        run_matrix_case(tmp_path, "int", 1, plan)

    def test_serial_csv_bit_flip(self, tmp_path):
        run_matrix_case(tmp_path, "csv", 1, SERIAL_FAULTS[4])

    def test_parallel_killed_worker(self, tmp_path):
        run_matrix_case(tmp_path, "int", 2, PARALLEL_FAULTS[0])

    def test_serial_binary_run_fault(self, tmp_path):
        """Binary RBLK runs recover exactly like text runs."""
        run_matrix_case(tmp_path, "int", 1, SERIAL_FAULTS[0], binary=True)

    def test_serial_binary_bit_flip(self, tmp_path):
        """A flipped byte inside an RBLK body is caught by the header
        CRC and the poisoned run is regenerated on resume."""
        run_matrix_case(tmp_path, "csv", 1, SERIAL_FAULTS[4], binary=True)

    def test_parallel_binary_shard_fault(self, tmp_path):
        run_matrix_case(tmp_path, "int", 2, PARALLEL_FAULTS[0], binary=True)


CODECS_UNDER_TEST = ["zlib", "lzma", "front", "front+zlib"]


class TestFaultMatrixCodecSmoke:
    """Faults inside *compressed* (RBLC) block bodies.

    A flipped, torn, or truncated byte inside a compressed body cannot
    be caught by parsing — zlib streams often still inflate and front
    coding happily decodes shifted prefixes — so these cases pin the
    tentpole property: the always-on RBLC header CRC turns every such
    fault into the same clean exit-1 failure, and --resume reproduces
    the fault-free bytes."""

    @pytest.mark.parametrize("codec", CODECS_UNDER_TEST)
    def test_serial_bit_flip(self, tmp_path, codec):
        run_matrix_case(tmp_path, "int", 1, SERIAL_FAULTS[4], codec=codec)

    def test_serial_truncate_zlib(self, tmp_path):
        run_matrix_case(tmp_path, "int", 1, SERIAL_FAULTS[5], codec="zlib")

    def test_serial_short_write_front_zlib(self, tmp_path):
        run_matrix_case(
            tmp_path, "csv", 1, SERIAL_FAULTS[1], codec="front+zlib"
        )

    def test_serial_binary_bit_flip_zlib(self, tmp_path):
        """Order-preserving key bytes under zlib: corrupt stored body,
        caught before any record reaches the merge."""
        run_matrix_case(
            tmp_path, "int", 1, SERIAL_FAULTS[4], binary=True, codec="zlib"
        )

    def test_parallel_shard_bit_flip_zlib(self, tmp_path):
        run_matrix_case(tmp_path, "int", 2, PARALLEL_FAULTS[2], codec="zlib")


@pytest.mark.stress
class TestFaultMatrixStress:
    """The full sweep: every fault point x backend x format."""

    @pytest.mark.parametrize("binary", [False, True], ids=["text", "bin"])
    @pytest.mark.parametrize("fmt", ["int", "str", "csv"])
    @pytest.mark.parametrize("plan", SERIAL_FAULTS,
                             ids=lambda p: p.describe())
    def test_serial(self, tmp_path, fmt, plan, binary):
        run_matrix_case(tmp_path, fmt, 1, plan, binary=binary)

    @pytest.mark.parametrize("binary", [False, True], ids=["text", "bin"])
    @pytest.mark.parametrize("fmt", ["int", "str", "csv"])
    @pytest.mark.parametrize("plan", PARALLEL_FAULTS,
                             ids=lambda p: p.describe())
    def test_parallel(self, tmp_path, fmt, plan, binary):
        run_matrix_case(tmp_path, fmt, 2, plan, binary=binary)


@pytest.mark.stress
class TestFaultMatrixCodecStress:
    """Every fault point x every codec, serial and parallel."""

    @pytest.mark.parametrize("codec", CODECS_UNDER_TEST)
    @pytest.mark.parametrize("binary", [False, True], ids=["text", "bin"])
    @pytest.mark.parametrize("plan", SERIAL_FAULTS,
                             ids=lambda p: p.describe())
    def test_serial(self, tmp_path, plan, binary, codec):
        run_matrix_case(tmp_path, "int", 1, plan, binary=binary, codec=codec)

    @pytest.mark.parametrize("codec", CODECS_UNDER_TEST)
    @pytest.mark.parametrize("plan", PARALLEL_FAULTS,
                             ids=lambda p: p.describe())
    def test_parallel(self, tmp_path, plan, codec):
        run_matrix_case(tmp_path, "int", 2, plan, codec=codec)


class TestCleanFailureWithoutDurability:
    """Without --resume, a fault must clean up and raise SortError."""

    @pytest.mark.parametrize("plan", [SERIAL_FAULTS[0], SERIAL_FAULTS[5]],
                             ids=lambda p: p.describe())
    def test_engine_cleans_temp_files(self, tmp_path, plan):
        data = [((i * 409) % 700) for i in range(500)]
        sorter = FileSpillSort(
            GeneratorSpec(algorithm="rs", memory=32).build(),
            fan_in=4, buffer_records=8, tmp_dir=str(tmp_path), checksum=True,
        )
        with activate(plan):
            with pytest.raises(SortError):
                list(sorter.sort(iter(data)))
        assert files_under(tmp_path) == []
