"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


@pytest.fixture()
def input_file(tmp_path):
    path = tmp_path / "input.txt"
    values = [5, 3, 9, 1, 7, 2, 8, 4, 6, 0] * 30
    path.write_text("\n".join(str(v) for v in values) + "\n")
    return path, sorted(values)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_sort_defaults(self):
        args = build_parser().parse_args(["sort", "file.txt"])
        assert args.algorithm == "2wrs"
        assert args.memory == 10_000
        assert args.input_heuristic == "mean"

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sort", "--algorithm", "bogosort"])


class TestSortCommand:
    @pytest.mark.parametrize("algorithm", ["rs", "2wrs", "lss", "brs"])
    def test_sorts_file(self, input_file, tmp_path, algorithm, capsys):
        path, expected = input_file
        out = tmp_path / "out.txt"
        code = main(
            [
                "sort",
                "--algorithm",
                algorithm,
                "--memory",
                "16",
                str(path),
                "-o",
                str(out),
            ]
        )
        assert code == 0
        got = [int(line) for line in out.read_text().splitlines()]
        assert got == expected
        assert "runs" in capsys.readouterr().err

    def test_sort_to_stdout(self, input_file, capsys):
        path, expected = input_file
        assert main(["sort", "--memory", "16", str(path)]) == 0
        got = [int(line) for line in capsys.readouterr().out.splitlines()]
        assert got == expected

    def test_sort_stdin(self, monkeypatch, capsys):
        monkeypatch.setattr("sys.stdin", io.StringIO("3\n1\n2\n"))
        assert main(["sort", "-"]) == 0
        assert capsys.readouterr().out.splitlines() == ["1", "2", "3"]

    def test_sort_does_not_close_stdin(self, monkeypatch, capsys):
        # Regression: `with _open_input(None)` used to close sys.stdin.
        fake = io.StringIO("2\n1\n")
        monkeypatch.setattr("sys.stdin", fake)
        assert main(["sort"]) == 0
        assert not fake.closed
        assert capsys.readouterr().out.splitlines() == ["1", "2"]

    def test_sort_report_flag(self, input_file, capsys):
        path, expected = input_file
        assert main(["sort", "--memory", "16", "--report", str(path)]) == 0
        captured = capsys.readouterr()
        got = [int(line) for line in captured.out.splitlines()]
        assert got == expected
        assert "cpu_ops=" in captured.err
        assert "wall=" in captured.err
        assert "peak_buffered=" in captured.err

    def test_sort_custom_fan_in(self, input_file, capsys):
        path, expected = input_file
        assert main(["sort", "--memory", "16", "--fan-in", "2", str(path)]) == 0
        got = [int(line) for line in capsys.readouterr().out.splitlines()]
        assert got == expected

    def test_invalid_fan_in_rejected_cleanly(self, input_file):
        path, _ = input_file
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sort", "--fan-in", "1", str(path)])

    def test_invalid_merge_buffer_rejected_cleanly(self, input_file):
        path, _ = input_file
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sort", "--merge-buffer", "0", str(path)])


class TestRunsCommand:
    def test_reports_all_algorithms(self, input_file, capsys):
        path, _ = input_file
        assert main(["runs", "--memory", "16", str(path)]) == 0
        out = capsys.readouterr().out
        for name in ("RS", "2WRS", "LSS", "BRS"):
            assert name in out

    def test_runs_does_not_close_stdin(self, monkeypatch, capsys):
        fake = io.StringIO("3\n1\n2\n")
        monkeypatch.setattr("sys.stdin", fake)
        assert main(["runs", "--memory", "16"]) == 0
        assert not fake.closed

    def test_runs_report_adds_timings(self, input_file, capsys):
        path, _ = input_file
        assert main(["runs", "--memory", "16", "--report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "run time" in out
        assert "total time" in out
        for name in ("RS", "2WRS", "LSS", "BRS"):
            assert name in out


class TestExperimentCommand:
    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "fig_9_9"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_runs_polyphase_experiment(self, capsys):
        assert main(["experiment", "table_2_1_polyphase"]) == 0
        assert "Table 2.1" in capsys.readouterr().out


class TestDatasetCommand:
    def test_emits_requested_records(self, capsys):
        assert main(["dataset", "sorted", "--records", "25"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) == 25
        values = [int(v) for v in lines]
        assert values == sorted(values)

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            main(["dataset", "zipf"])
