"""Tests for the command-line interface."""

import io
from collections import Counter

import pytest

from repro.cli import build_parser, main


@pytest.fixture()
def input_file(tmp_path):
    path = tmp_path / "input.txt"
    values = [5, 3, 9, 1, 7, 2, 8, 4, 6, 0] * 30
    path.write_text("\n".join(str(v) for v in values) + "\n")
    return path, sorted(values)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_sort_defaults(self):
        args = build_parser().parse_args(["sort", "file.txt"])
        assert args.algorithm == "2wrs"
        assert args.memory == 10_000
        assert args.input_heuristic == "mean"

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sort", "--algorithm", "bogosort"])


class TestSortCommand:
    @pytest.mark.parametrize("algorithm", ["rs", "2wrs", "lss", "brs"])
    def test_sorts_file(self, input_file, tmp_path, algorithm, capsys):
        path, expected = input_file
        out = tmp_path / "out.txt"
        code = main(
            [
                "sort",
                "--algorithm",
                algorithm,
                "--memory",
                "16",
                str(path),
                "-o",
                str(out),
            ]
        )
        assert code == 0
        got = [int(line) for line in out.read_text().splitlines()]
        assert got == expected
        assert "runs" in capsys.readouterr().err

    def test_sort_to_stdout(self, input_file, capsys):
        path, expected = input_file
        assert main(["sort", "--memory", "16", str(path)]) == 0
        got = [int(line) for line in capsys.readouterr().out.splitlines()]
        assert got == expected

    def test_sort_stdin(self, monkeypatch, capsys):
        monkeypatch.setattr("sys.stdin", io.StringIO("3\n1\n2\n"))
        assert main(["sort", "-"]) == 0
        assert capsys.readouterr().out.splitlines() == ["1", "2", "3"]

    def test_sort_does_not_close_stdin(self, monkeypatch, capsys):
        # Regression: `with _open_input(None)` used to close sys.stdin.
        fake = io.StringIO("2\n1\n")
        monkeypatch.setattr("sys.stdin", fake)
        assert main(["sort"]) == 0
        assert not fake.closed
        assert capsys.readouterr().out.splitlines() == ["1", "2"]

    def test_sort_report_flag(self, input_file, capsys):
        path, expected = input_file
        assert main(["sort", "--memory", "16", "--report", str(path)]) == 0
        captured = capsys.readouterr()
        got = [int(line) for line in captured.out.splitlines()]
        assert got == expected
        assert "cpu_ops=" in captured.err
        assert "wall=" in captured.err
        assert "peak_buffered=" in captured.err

    def test_sort_custom_fan_in(self, input_file, capsys):
        path, expected = input_file
        assert main(["sort", "--memory", "16", "--fan-in", "2", str(path)]) == 0
        got = [int(line) for line in capsys.readouterr().out.splitlines()]
        assert got == expected

    def test_invalid_fan_in_rejected_cleanly(self, input_file):
        path, _ = input_file
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sort", "--fan-in", "1", str(path)])

    def test_invalid_merge_buffer_rejected_cleanly(self, input_file):
        path, _ = input_file
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sort", "--merge-buffer", "0", str(path)])


class TestRunsCommand:
    def test_reports_all_algorithms(self, input_file, capsys):
        path, _ = input_file
        assert main(["runs", "--memory", "16", str(path)]) == 0
        out = capsys.readouterr().out
        for name in ("RS", "2WRS", "LSS", "BRS"):
            assert name in out

    def test_runs_does_not_close_stdin(self, monkeypatch, capsys):
        fake = io.StringIO("3\n1\n2\n")
        monkeypatch.setattr("sys.stdin", fake)
        assert main(["runs", "--memory", "16"]) == 0
        assert not fake.closed

    def test_runs_report_adds_timings(self, input_file, capsys):
        path, _ = input_file
        assert main(["runs", "--memory", "16", "--report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "run time" in out
        assert "total time" in out
        for name in ("RS", "2WRS", "LSS", "BRS"):
            assert name in out


class TestExperimentCommand:
    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "fig_9_9"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_runs_polyphase_experiment(self, capsys):
        assert main(["experiment", "table_2_1_polyphase"]) == 0
        assert "Table 2.1" in capsys.readouterr().out


class TestEmptyInput:
    """Satellite: sorting zero records must exit 0 with a sane report."""

    @pytest.fixture()
    def empty_file(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("")
        return path

    def test_sort_empty_file(self, empty_file, capsys):
        assert main(["sort", str(empty_file)]) == 0
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "0 records in 0 runs (avg 0 records)" in captured.err

    def test_sort_empty_file_with_report(self, empty_file, capsys):
        assert main(["sort", "--report", str(empty_file)]) == 0
        err = capsys.readouterr().err
        assert "0 records in 0 runs (avg 0 records)" in err
        assert "cpu_ops=0" in err

    def test_sort_empty_file_spill_path(self, empty_file, tmp_path, capsys):
        # Tiny memory would spill — but zero records must still work
        # when the probe finds nothing.
        out = tmp_path / "out.txt"
        assert main(
            ["sort", "--memory", "16", "--report", str(empty_file),
             "-o", str(out)]
        ) == 0
        assert out.read_text() == ""

    def test_sort_empty_file_parallel(self, empty_file, tmp_path, capsys):
        out = tmp_path / "out.txt"
        assert main(
            ["sort", "--workers", "2", "--report", str(empty_file),
             "-o", str(out)]
        ) == 0
        assert out.read_text() == ""
        assert "0 records in 0 runs (avg 0 records)" in capsys.readouterr().err

    def test_runs_empty_file(self, empty_file, capsys):
        assert main(["runs", "--report", str(empty_file)]) == 0
        out = capsys.readouterr().out
        for name in ("RS", "2WRS", "LSS", "BRS"):
            assert name in out

    def test_blank_lines_only(self, tmp_path, capsys):
        path = tmp_path / "blanks.txt"
        path.write_text("\n\n   \n")
        assert main(["sort", str(path)]) == 0
        assert capsys.readouterr().out == ""


class TestRecordFormats:
    """Acceptance: every --format sorts byte-identically across the
    serial spill backend, the parallel backend, and all merge reading
    strategies."""

    CASES = {
        "int": (
            [],
            lambda rng: [str(rng.randrange(-10_000, 10_000))
                         for _ in range(400)],
        ),
        "float": (
            [],
            lambda rng: [repr(rng.gauss(0, 100)) for _ in range(400)],
        ),
        "str": (
            [],
            lambda rng: [f"w{rng.randrange(100_000):06d}"
                         for _ in range(400)],
        ),
        "csv": (
            ["--key", "1"],
            lambda rng: [f"id{i:04d},{rng.randrange(500)},x{i % 3}"
                         for i in range(400)],
        ),
    }

    @pytest.mark.parametrize("fmt", sorted(CASES))
    def test_byte_identical_across_backends(self, fmt, tmp_path, capsys):
        import random

        flags, build = self.CASES[fmt]
        lines = build(random.Random(99))
        src = tmp_path / "input.txt"
        src.write_text("".join(f"{line}\n" for line in lines))
        outputs = set()
        variants = [
            ["--reading", "naive"],
            ["--reading", "forecasting"],
            ["--reading", "double_buffering"],
            ["--workers", "2"],
        ]
        for index, variant in enumerate(variants):
            out = tmp_path / f"out-{index}.txt"
            code = main(
                ["sort", "--memory", "64", "--format", fmt, *flags,
                 *variant, str(src), "-o", str(out)]
            )
            assert code == 0
            outputs.add(out.read_text())
        capsys.readouterr()
        assert len(outputs) == 1, f"{fmt} output differs across backends"
        got = outputs.pop().splitlines()
        assert len(got) == len(lines)
        assert Counter(got) == Counter(lines)

    def test_csv_sorts_by_key_column(self, tmp_path, capsys):
        src = tmp_path / "rows.csv"
        src.write_text("b,3,x\na,1,y\nc,2,z\n")
        out = tmp_path / "out.csv"
        assert main(
            ["sort", "--format", "csv", "--key", "1", str(src),
             "-o", str(out)]
        ) == 0
        assert out.read_text() == "a,1,y\nc,2,z\nb,3,x\n"

    def test_csv_tolerates_blank_separator_lines(self, tmp_path, capsys):
        src = tmp_path / "rows.csv"
        src.write_text("b,3,x\n\na,1,y\n  \nc,2,z\n")
        out = tmp_path / "out.csv"
        assert main(
            ["sort", "--format", "csv", "--key", "1", str(src),
             "-o", str(out)]
        ) == 0
        assert out.read_text() == "a,1,y\nc,2,z\nb,3,x\n"

    def test_csv_mixed_key_column_does_not_crash(self, tmp_path, capsys):
        # One numeric-looking value in a text column: numeric keys rank
        # before text keys instead of raising a str-vs-int TypeError.
        src = tmp_path / "rows.csv"
        src.write_text("a,1\nb,xyz\nc,3\n")
        out = tmp_path / "out.csv"
        assert main(
            ["sort", "--format", "csv", "--key", "1", str(src),
             "-o", str(out)]
        ) == 0
        assert out.read_text() == "a,1\nc,3\nb,xyz\n"

    def test_str_format_keeps_whitespace_records(self, tmp_path, capsys):
        src = tmp_path / "lines.txt"
        src.write_text("b\n \na\n")
        assert main(["sort", "--format", "str", str(src)]) == 0
        assert capsys.readouterr().out == " \na\nb\n"

    def test_key_without_delimited_format_rejected(self, tmp_path, capsys):
        src = tmp_path / "lines.txt"
        src.write_text("2\n1\n")
        with pytest.raises(SystemExit, match="--key only applies"):
            main(["sort", "--format", "str", "--key", "2", str(src)])

    def test_float_nan_rejected_loudly(self, tmp_path):
        src = tmp_path / "vals.txt"
        src.write_text("2.0\nnan\n1.0\n")
        with pytest.raises(ValueError, match="NaN"):
            main(["sort", "--format", "float", str(src),
                  "-o", str(tmp_path / "out.txt")])

    def test_str_format_sorts_words(self, tmp_path, capsys):
        src = tmp_path / "words.txt"
        src.write_text("pear\napple\nfig\n")
        assert main(["sort", "--format", "str", str(src)]) == 0
        assert capsys.readouterr().out == "apple\nfig\npear\n"

    def test_reading_strategy_shown_in_report(self, tmp_path, capsys):
        src = tmp_path / "input.txt"
        src.write_text("".join(f"{v}\n" for v in range(300, 0, -1)))
        assert main(
            ["sort", "--memory", "16", "--reading", "double_buffering",
             "--report", str(src), "-o", str(tmp_path / "o.txt")]
        ) == 0
        assert "strategy=double_buffering" in capsys.readouterr().err


class TestDatasetCommand:
    def test_emits_requested_records(self, capsys):
        assert main(["dataset", "sorted", "--records", "25"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) == 25
        values = [int(v) for v in lines]
        assert values == sorted(values)

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            main(["dataset", "zipf"])
