"""Differential testing: the store vs a sqlite3 oracle (ISSUE 10).

``sqlite3`` ships with CPython and implements the same contract from
the opposite direction (B-tree, not LSM): a ``BLOB PRIMARY KEY`` table
ordered with ``ORDER BY k`` sorts by memcmp, exactly the store's key
order.  Random put/delete workloads — interleaved with flushes,
compactions and full close/reopen cycles at arbitrary points — must
leave ``store.scan()`` byte-identical to the oracle at every
checkpoint.

The second half locks the acceptance criterion directly: replaying one
operation log into stores with *different* tuning (memtable budget,
fan-in, codec, block size) must produce byte-identical scans — the
physical layout is allowed to differ, the logical contents are not.
"""

import random
import sqlite3

import pytest

from repro.store import Store
from repro.store.oplog import parse_op_line
from tests._helpers import stress_seed

KEY_SPACE = 400


class Oracle:
    """The stdlib B-tree wearing the store's interface."""

    def __init__(self):
        self._db = sqlite3.connect(":memory:")
        self._db.execute("CREATE TABLE kv (k BLOB PRIMARY KEY, v BLOB)")

    def put(self, key, value):
        self._db.execute(
            "INSERT INTO kv (k, v) VALUES (?, ?) "
            "ON CONFLICT (k) DO UPDATE SET v = excluded.v",
            (key, value),
        )

    def delete(self, key):
        self._db.execute("DELETE FROM kv WHERE k = ?", (key,))

    def get(self, key):
        row = self._db.execute(
            "SELECT v FROM kv WHERE k = ?", (key,)
        ).fetchone()
        return None if row is None else bytes(row[0])

    def scan(self):
        return [
            (bytes(key), bytes(value))
            for key, value in self._db.execute(
                "SELECT k, v FROM kv ORDER BY k"
            )
        ]

    def close(self):
        self._db.close()


def random_key(rng):
    # Variable-length keys with a shared prefix population, plus a
    # sprinkling of raw bytes (NULs, separators, high bit) so memcmp
    # order is actually exercised, not just ASCII order.
    if rng.random() < 0.15:
        return bytes(
            rng.randrange(256) for _ in range(rng.randrange(1, 12))
        )
    return b"key-%04d" % rng.randrange(KEY_SPACE)


def random_value(rng):
    length = rng.choice((0, 1, 7, 40, 300))
    return bytes(rng.randrange(256) for _ in range(length))


def run_workload(tmp_path, seed, steps, **store_options):
    rng = random.Random(seed)
    path = str(tmp_path / "db")
    oracle = Oracle()
    store = Store(path, sync=False, **store_options)
    try:
        for step in range(steps):
            roll = rng.random()
            key = random_key(rng)
            if roll < 0.65:
                value = random_value(rng)
                store.put(key, value)
                oracle.put(key, value)
            elif roll < 0.90:
                store.delete(key)
                oracle.delete(key)
            elif roll < 0.94:
                store.flush()
            elif roll < 0.97:
                store.compact()
            else:
                store.close()
                store = Store(path, sync=False, **store_options)
            if step % 100 == 99:
                assert store.scan() is not None
                assert list(store.scan()) == oracle.scan(), (
                    f"diverged at step {step} (seed {seed})"
                )
        assert list(store.scan()) == oracle.scan()
        for _ in range(40):
            probe = random_key(rng)
            assert store.get(probe) == oracle.get(probe)
        store.verify()
    finally:
        store.close()
        oracle.close()


class TestAgainstSqlite:
    def test_default_tuning(self, tmp_path):
        run_workload(tmp_path, stress_seed("store-diff", 1), 500, memory=32)

    def test_tiny_memtable_constant_churn(self, tmp_path):
        run_workload(
            tmp_path,
            stress_seed("store-diff", 2),
            400,
            memory=3,
            fan_in=2,
            block_records=4,
        )

    def test_compressed_tables(self, tmp_path):
        run_workload(
            tmp_path,
            stress_seed("store-diff", 3),
            400,
            memory=16,
            codec="front+zlib",
        )

    @pytest.mark.stress
    @pytest.mark.parametrize("case", range(8))
    def test_long_workloads(self, tmp_path, case):
        rng = random.Random(stress_seed("store-diff-long", case))
        run_workload(
            tmp_path,
            stress_seed("store-diff-steps", case),
            2000,
            memory=rng.choice((5, 16, 64)),
            fan_in=rng.choice((2, 4, 8)),
            codec=rng.choice(("none", "zlib", "front+zlib")),
            block_records=rng.choice((4, 32, 128)),
        )


# ---------------------------------------------------------------------------
# Acceptance: one oplog, many tunings, one answer
# ---------------------------------------------------------------------------


def make_oplog(seed, steps):
    rng = random.Random(seed)
    lines = []
    for _ in range(steps):
        key = random_key(rng)
        if rng.random() < 0.7:
            lines.append(("put", key, random_value(rng)))
        else:
            lines.append(("del", key, b""))
    return lines


def replay(tmp_path, name, ops, **store_options):
    path = str(tmp_path / name)
    with Store(path, sync=False, **store_options) as store:
        for op, key, value in ops:
            if op == "put":
                store.put(key, value)
            else:
                store.delete(key)
        store.flush()
        result = list(store.scan())
        store.verify()
    # Reopen read-only-ish and rescan: the on-disk state alone (no
    # memtable residue) must produce the same answer.
    with Store(path, sync=False, **store_options) as store:
        assert list(store.scan()) == result
    return result


class TestOplogRebuildIdentity:
    def test_scan_is_invariant_under_tuning(self, tmp_path):
        ops = make_oplog(stress_seed("store-oplog", 0), 600)
        baseline = replay(tmp_path, "a", ops, memory=1000)
        assert baseline == replay(
            tmp_path, "b", ops, memory=4, fan_in=2, block_records=4
        )
        assert baseline == replay(
            tmp_path, "c", ops, memory=32, codec="front+zlib"
        )
        assert baseline == replay(
            tmp_path, "d", ops, memory=16, fan_in=3, codec="zlib",
            auto_compact=False,
        )

    def test_oplog_text_round_trip_preserves_identity(self, tmp_path):
        # Serialize through the CLI's text oplog codec and parse back:
        # the escaping layer must not perturb the replayed contents.
        from repro.store.oplog import escape_bytes

        ops = make_oplog(stress_seed("store-oplog", 1), 300)
        lines = []
        for op, key, value in ops:
            if op == "put":
                lines.append(
                    f"put\t{escape_bytes(key)}\t{escape_bytes(value)}\n"
                )
            else:
                lines.append(f"del\t{escape_bytes(key)}\n")
        parsed = [
            parse_op_line(line, number)
            for number, line in enumerate(lines, start=1)
        ]
        assert parsed == ops
        direct = replay(tmp_path, "direct", ops, memory=8)
        via_text = replay(tmp_path, "text", parsed, memory=64, fan_in=2)
        assert direct == via_text
