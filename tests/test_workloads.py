"""Tests for the six input distributions (Figure 5.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.generators import (
    DISTRIBUTIONS,
    alternating_input,
    make_input,
    mixed_balanced_input,
    mixed_imbalanced_input,
    mixed_input,
    random_input,
    reverse_sorted_input,
    sorted_input,
)


class TestSorted:
    def test_is_ascending(self):
        values = list(sorted_input(1000))
        assert values == sorted(values)

    def test_length(self):
        assert len(list(sorted_input(123))) == 123

    def test_noise_keeps_overall_trend(self):
        # Noise is bounded by the inter-record step at reasonable sizes.
        values = list(sorted_input(1000, seed=1, noise=1000))
        exact = list(sorted_input(1000))
        drift = [abs(a - b) for a, b in zip(values, exact)]
        assert max(drift) <= 1000


class TestReverseSorted:
    def test_is_descending(self):
        values = list(reverse_sorted_input(1000))
        assert values == sorted(values, reverse=True)

    def test_covers_same_range_as_sorted(self):
        up = list(sorted_input(100))
        down = list(reverse_sorted_input(100))
        assert sorted(up) == sorted(down)


class TestAlternating:
    def test_sections_alternate_direction(self):
        values = list(alternating_input(1000, sections=4))
        quarter = len(values) // 4
        first = values[:quarter]
        second = values[quarter : 2 * quarter]
        assert first == sorted(first)
        assert second == sorted(second, reverse=True)

    def test_section_count_one_is_sorted(self):
        values = list(alternating_input(500, sections=1))
        assert values == sorted(values)

    def test_invalid_sections(self):
        with pytest.raises(ValueError):
            list(alternating_input(10, sections=0))

    def test_exact_length_with_remainder(self):
        assert len(list(alternating_input(1003, sections=7))) == 1003


class TestRandom:
    def test_deterministic_with_seed(self):
        a = list(random_input(100, seed=5))
        b = list(random_input(100, seed=5))
        assert a == b

    def test_different_seeds_differ(self):
        assert list(random_input(100, seed=1)) != list(random_input(100, seed=2))

    def test_range(self):
        values = list(random_input(1000, seed=0, value_span=1000))
        assert all(0 <= v < 1000 for v in values)


class TestMixed:
    def test_balanced_alternates_trends(self):
        values = list(mixed_balanced_input(1000))
        ups = values[0::2]
        downs = values[1::2]
        assert ups == sorted(ups)
        assert downs == sorted(downs, reverse=True)

    def test_trends_live_in_disjoint_halves(self):
        values = list(mixed_balanced_input(1000, value_span=10**9))
        ups = values[0::2]
        downs = values[1::2]
        assert max(ups) < min(downs)

    def test_imbalanced_ratio(self):
        values = list(mixed_imbalanced_input(1000, value_span=10**9))
        half = 10**9 // 2
        ups = sum(1 for v in values if v < half)
        downs = len(values) - ups
        assert downs == pytest.approx(3 * ups, rel=0.05)

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            list(mixed_input(10, down_per_up=0))


class TestRegistry:
    def test_all_six_distributions_registered(self):
        assert set(DISTRIBUTIONS) == {
            "sorted",
            "reverse_sorted",
            "alternating",
            "random",
            "mixed_balanced",
            "mixed_imbalanced",
        }

    def test_make_input_unknown_name(self):
        with pytest.raises(ValueError, match="unknown distribution"):
            list(make_input("zipf", 10))

    def test_make_input_adds_noise_by_default(self):
        # Section 5.2: seeded replicates must differ for the ANOVA.
        a = list(make_input("sorted", 50, seed=1))
        b = list(make_input("sorted", 50, seed=2))
        assert a != b


@settings(max_examples=60)
@given(
    st.sampled_from(sorted(DISTRIBUTIONS)),
    st.integers(1, 500),
    st.integers(0, 2**31),
)
def test_every_distribution_yields_exactly_n(name, n, seed):
    assert len(list(make_input(name, n, seed=seed))) == n


@settings(max_examples=60)
@given(st.integers(1, 300), st.integers(0, 2**31))
def test_noise_is_deterministic_per_seed(n, seed):
    a = list(make_input("random", n, seed=seed))
    b = list(make_input("random", n, seed=seed))
    assert a == b
