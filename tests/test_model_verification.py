"""Tests for the closed-form verification of the stable solution (§3.6.1)."""

import math

import pytest

from repro.model.verification import (
    stable_m,
    stable_p,
    stable_run_length,
    verify_stable_solution,
)


class TestStableSolution:
    def test_p_is_half_t(self):
        assert stable_p(4.0) == 2.0

    def test_m_at_run_start_is_2_minus_2x(self):
        # Just after a run boundary the front sits at 0 and the density
        # is the paper's 2 - 2x.
        for x in (0.0, 0.25, 0.5, 0.75, 0.99):
            assert stable_m(x, 0.0) == pytest.approx(2.0 - 2.0 * x)

    def test_m_rejects_out_of_range_x(self):
        with pytest.raises(ValueError):
            stable_m(1.0, 0.0)
        with pytest.raises(ValueError):
            stable_m(-0.1, 0.0)

    def test_m_is_2_at_the_front(self):
        for t in (0.3, 0.9, 1.7, 2.4):
            front = stable_p(t) - math.floor(stable_p(t))
            assert stable_m(front, t) == pytest.approx(2.0)

    def test_m_periodic_in_t(self):
        for x in (0.2, 0.6):
            assert stable_m(x, 0.5) == pytest.approx(stable_m(x, 2.5))


class TestEquationChecks:
    def test_all_four_equations_hold(self):
        report = verify_stable_solution()
        assert report.equation_3_9_speed < 1e-6
        assert report.equation_3_10_jump < 1e-4
        assert report.equation_3_11_inflow < 1e-6
        assert report.equation_3_12_memory < 1e-2
        assert report.max_violation() < 1e-2

    def test_run_length_is_two(self):
        # Section 3.6.1: the path integral over one run evaluates to 2.
        assert stable_run_length() == pytest.approx(2.0, abs=0.01)
