"""Crash and corruption behaviour of the store (ISSUE 10 fault matrix).

Three layers of adversity:

* **Seam faults** — :class:`repro.testing.faults.FaultPlan` targets the
  ``open_bytes`` seam the SSTable and WAL writers go through
  (``path_substring`` ``"sst-"`` / ``"wal-"``), injecting torn writes,
  bit flips and mid-call crashes at deterministic points.  Every case
  must fail *cleanly* (:class:`StoreError` / :class:`FaultInjected`,
  never silent corruption) and a reopen must serve every acknowledged
  write.
* **MANIFEST corruption** — the manifest is deliberately outside the
  seam (it is the recovery source of truth), so torn tails, bit flips
  and orphaned checkpoint temp files are staged by editing the file
  directly.
* **``kill -9``** — a child process applies a deterministic workload,
  acknowledging each operation on stdout; the parent SIGKILLs it at an
  arbitrary ack and reopens the directory.  The recovered state must
  equal the acked prefix of the workload, give or take the single
  in-flight operation.

Also here: the runtime R007 check — the lint rule bans ``decode`` calls
in the hot modules statically; this test instruments every text-side
:class:`StoreFormat` method and proves flush, compaction, gets and
scans never call one.
"""

import os
import signal
import subprocess
import sys
import textwrap

import pytest

from repro.engine.errors import ManifestError, StoreError
from repro.store import Store
from repro.store.format import StoreFormat
from repro.store.manifest import MANIFEST_NAME
from repro.testing.faults import FaultInjected, FaultPlan, activate


def fill(store, count, prefix=b"k"):
    for index in range(count):
        store.put(b"%s%06d" % (prefix, index), b"v%d" % index)


# ---------------------------------------------------------------------------
# Seam faults: flush
# ---------------------------------------------------------------------------


class TestFlushFaults:
    @pytest.mark.parametrize("kind", ["raise", "short_write"])
    def test_crash_mid_table_write(self, tmp_path, kind):
        path = str(tmp_path / "db")
        store = Store(path, memory=1000, sync=False)
        try:
            fill(store, 50)
            before = list(store.scan())
            plan = FaultPlan("write", 2, kind, path_substring="sst-")
            with activate(plan) as state:
                with pytest.raises(FaultInjected):
                    store.flush()
                assert state.fired
                assert state.leaked() == []
            # Nothing acknowledged was lost: the memtable still serves,
            # and a retry outside the fault window succeeds.
            assert list(store.scan()) == before
            assert store.flush() is not None
            assert list(store.scan()) == before
        finally:
            store.close()
        # The torn table the fault left behind is an orphan (never
        # reached the manifest) and the reopen sweeps it.
        with Store(path, sync=False) as store:
            assert list(store.scan()) == before
            store.verify()
        torn = [
            name
            for name in os.listdir(path)
            if name.startswith("sst-")
        ]
        assert len(torn) == 1  # only the committed flush survives

    def test_bit_flip_caught_by_read_back(self, tmp_path):
        path = str(tmp_path / "db")
        store = Store(path, memory=1000, sync=False)
        try:
            fill(store, 50)
            before = list(store.scan())
            plan = FaultPlan("write", 2, "bit_flip", path_substring="sst-")
            with activate(plan) as state:
                # The flip is silent at write time; the §11 read-back
                # verification refuses to commit the table.
                with pytest.raises(StoreError, match="read-back"):
                    store.flush()
                assert state.fired
            assert list(store.scan()) == before
            assert store.flush() is not None
        finally:
            store.close()
        with Store(path, sync=False) as store:
            assert list(store.scan()) == before

    def test_crash_on_table_open(self, tmp_path):
        store = Store(str(tmp_path / "db"), memory=1000, sync=False)
        try:
            fill(store, 10)
            plan = FaultPlan("open", 1, "raise", path_substring="sst-")
            with activate(plan):
                with pytest.raises(FaultInjected):
                    store.flush()
            assert store.count() == 10
        finally:
            store.close()


# ---------------------------------------------------------------------------
# Seam faults: compaction
# ---------------------------------------------------------------------------


class TestCompactionFaults:
    def build(self, path):
        store = Store(
            path, memory=10, sync=False, auto_compact=False, fan_in=2
        )
        fill(store, 60)
        for index in range(0, 60, 4):
            store.delete(b"k%06d" % index)
        store.flush()
        return store

    @pytest.mark.parametrize("kind", ["raise", "short_write"])
    def test_crash_mid_output_write(self, tmp_path, kind):
        path = str(tmp_path / "db")
        store = self.build(path)
        try:
            tables = store.table_names()
            assert len(tables) > 2
            before = list(store.scan())
            # Every sst write after activation belongs to the
            # compaction output — the flush already happened.
            plan = FaultPlan("write", 3, kind, path_substring="sst-")
            with activate(plan) as state:
                with pytest.raises(FaultInjected):
                    store.compact()
                assert state.fired
                assert state.leaked() == []
            # All-or-nothing: every input table is still live and
            # serving; the aborted output never reached the manifest.
            assert store.table_names() == tables
            assert list(store.scan()) == before
            assert store.compact() is not None
            assert list(store.scan()) == before
        finally:
            store.close()
        with Store(path, sync=False) as store:
            assert list(store.scan()) == before
            assert len(store.table_names()) == 1

    def test_bit_flip_mid_output_write(self, tmp_path):
        path = str(tmp_path / "db")
        store = self.build(path)
        try:
            tables = store.table_names()
            before = list(store.scan())
            plan = FaultPlan("write", 3, "bit_flip", path_substring="sst-")
            with activate(plan):
                with pytest.raises(StoreError, match="intact"):
                    store.compact()
            assert store.table_names() == tables
            assert list(store.scan()) == before
        finally:
            store.close()

    def test_crash_reading_an_input(self, tmp_path):
        path = str(tmp_path / "db")
        store = self.build(path)
        try:
            before = list(store.scan())
            plan = FaultPlan("read", 5, "raise", path_substring="sst-")
            with activate(plan):
                with pytest.raises(FaultInjected):
                    store.compact()
            assert list(store.scan()) == before
        finally:
            store.close()


# ---------------------------------------------------------------------------
# Seam faults: WAL
# ---------------------------------------------------------------------------


class TestWalFaults:
    def test_torn_wal_write_keeps_prior_acks(self, tmp_path):
        path = str(tmp_path / "db")
        acked = []
        # The WAL handle is opened at construction, so the store must
        # be opened inside the fault window for the seam to wrap it.
        plan = FaultPlan("write", 8, "short_write", path_substring="wal-")
        with activate(plan) as state:
            store = Store(path, memory=1000, sync=False)
            try:
                with pytest.raises(FaultInjected):
                    for index in range(20):
                        store.put(b"k%02d" % index, b"v%d" % index)
                        acked.append(index)
                assert state.fired
            finally:
                store.close()
        assert acked  # some puts were acknowledged before the tear
        with Store(path, sync=False) as store:
            got = dict(store.scan())
            for index in acked:
                assert got[b"k%02d" % index] == b"v%d" % index
            # At most the single in-flight put may also have landed.
            assert len(got) - len(acked) in (0, 1)
            store.put(b"after", b"recovery")
            assert store.get(b"after") == b"recovery"


# ---------------------------------------------------------------------------
# MANIFEST corruption (outside the seam, staged directly)
# ---------------------------------------------------------------------------


class TestManifestFaults:
    def build(self, path):
        with Store(path, memory=10, sync=False) as store:
            fill(store, 40)
            store.flush()
            return list(store.scan())

    def manifest_path(self, path):
        return os.path.join(path, MANIFEST_NAME)

    def test_torn_append_tolerated(self, tmp_path):
        path = str(tmp_path / "db")
        before = self.build(path)
        with open(self.manifest_path(path), "a", encoding="utf-8") as f:
            f.write('{"type": "compact", "remov')  # power loss mid-append
        with Store(path, sync=False) as store:
            assert list(store.scan()) == before
            store.verify()

    def test_bit_flip_mid_file_is_a_clean_error(self, tmp_path):
        path = str(tmp_path / "db")
        self.build(path)
        manifest = self.manifest_path(path)
        with open(manifest, "r", encoding="utf-8") as f:
            lines = f.readlines()
        assert len(lines) >= 2
        lines[0] = '{"type": "met~' + lines[0][14:]
        with open(manifest, "w", encoding="utf-8") as f:
            f.writelines(lines)
        with pytest.raises(ManifestError):
            Store(path, sync=False)

    def test_interrupted_checkpoint_swap(self, tmp_path):
        path = str(tmp_path / "db")
        before = self.build(path)
        # A crash between writing MANIFEST.tmp and the os.replace
        # leaves the temp file next to an intact manifest: the temp is
        # garbage (maybe torn), the manifest is authoritative.
        tmp_file = os.path.join(path, "MANIFEST.tmp")
        with open(tmp_file, "w", encoding="utf-8") as f:
            f.write('{"type": "meta", "torn')
        with Store(path, sync=False) as store:
            assert list(store.scan()) == before
        assert not os.path.exists(tmp_file)

    def test_missing_manifest_refused(self, tmp_path):
        path = str(tmp_path / "db")
        self.build(path)
        os.remove(self.manifest_path(path))
        # A store directory with tables but no manifest is not an
        # empty directory — refusing beats silently re-initialising
        # over data.
        with pytest.raises(StoreError):
            Store(path, sync=False)


# ---------------------------------------------------------------------------
# kill -9: a real process, a real SIGKILL, a real reopen
# ---------------------------------------------------------------------------


CHILD_SOURCE = textwrap.dedent(
    """
    import sys

    from repro.store import Store

    path = sys.argv[1]
    store = Store(path, memory=8, fan_in=2)  # flush+compact constantly
    step = 0
    while True:
        if step % 5 == 4:
            store.delete(b"k%06d" % (step - 4))
        else:
            store.put(b"k%06d" % step, b"v%d" % step)
        sys.stdout.write("ACK %d\\n" % step)
        sys.stdout.flush()
        step += 1
    """
)


def workload_state(steps):
    """The store contents after applying workload ops ``0..steps-1``."""
    state = {}
    for step in range(steps):
        if step % 5 == 4:
            state.pop(b"k%06d" % (step - 4), None)
        else:
            state[b"k%06d" % step] = b"v%d" % step
    return state


class TestKillNine:
    # 23 dies in WAL-only territory; 57 mid-flush churn; 140 after
    # several auto-compactions have rewritten the level structure.
    @pytest.mark.parametrize("kill_after", [23, 57, 140])
    def test_acked_writes_survive_sigkill(self, tmp_path, kill_after):
        path = str(tmp_path / "db")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (
                os.path.join(os.path.dirname(__file__), "..", "src"),
                env.get("PYTHONPATH"),
            ) if p
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", CHILD_SOURCE, path],
            stdout=subprocess.PIPE,
            env=env,
            text=True,
        )
        acked = -1
        try:
            assert proc.stdout is not None
            for line in proc.stdout:
                acked = int(line.split()[1])
                if acked + 1 >= kill_after:
                    break
        finally:
            proc.kill()  # SIGKILL: no atexit, no flush, no close
            proc.wait()
        assert acked + 1 == kill_after
        # Every acked op is applied; at most the one in-flight op
        # beyond the last ack may additionally have reached the WAL.
        with Store(path) as store:
            got = dict(store.scan())
            assert got in (
                workload_state(acked + 1),
                workload_state(acked + 2),
            )
            summary = store.verify()
            assert summary["tables"] == len(store.table_names())
            # And the survivor is a working store, not a read-only husk.
            store.put(b"post-crash", b"ok")
            store.compact()
            assert store.get(b"post-crash") == b"ok"

    def test_sigkill_storm(self, tmp_path):
        """Kill the same directory five times in a row, then audit."""
        path = str(tmp_path / "db")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (
                os.path.join(os.path.dirname(__file__), "..", "src"),
                env.get("PYTHONPATH"),
            ) if p
        )
        child = textwrap.dedent(
            """
            import sys

            from repro.store import Store

            path = sys.argv[1]
            with Store(path, memory=8, fan_in=2) as store:
                base = int(sys.argv[2])
                for step in range(base, base + 10_000):
                    store.put(b"k%06d" % step, b"v%d" % step)
                    sys.stdout.write("ACK %d\\n" % step)
                    sys.stdout.flush()
            """
        )
        acked = -1
        for round_number in range(5):
            proc = subprocess.Popen(
                [sys.executable, "-c", child, path, str(acked + 1)],
                stdout=subprocess.PIPE,
                env=env,
                text=True,
            )
            try:
                assert proc.stdout is not None
                for line in proc.stdout:
                    acked = int(line.split()[1])
                    if acked % 17 == 16 and acked > round_number * 20:
                        break
            finally:
                proc.kill()
                proc.wait()
        with Store(path) as store:
            got = dict(store.scan())
            for step in range(acked + 1):
                assert got.get(b"k%06d" % step) == b"v%d" % step
            store.verify()


# ---------------------------------------------------------------------------
# REPRO_FAULT_PLAN: the env relay reaches store CLI subprocesses
# ---------------------------------------------------------------------------


class TestEnvInjectedFaults:
    def test_cli_flush_bit_flip_fails_cleanly_and_recovers(self, tmp_path):
        db = str(tmp_path / "db")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (
                os.path.join(os.path.dirname(__file__), "..", "src"),
                env.get("PYTHONPATH"),
            ) if p
        )

        def cli(*argv, fault=None, expect=0):
            run_env = dict(env)
            if fault is not None:
                run_env["REPRO_FAULT_PLAN"] = fault.to_json()
            result = subprocess.run(
                [sys.executable, "-m", "repro.cli", *argv],
                env=run_env,
                capture_output=True,
                text=True,
            )
            assert result.returncode == expect, result.stderr
            return result

        for index in range(40):
            cli("store", "put", db, f"k{index:02d}", f"v{index}")
        plan = FaultPlan("write", 2, "bit_flip", path_substring="sst-")
        result = cli("store", "flush", db, fault=plan, expect=1)
        assert "read-back verification" in result.stderr
        assert "no acknowledged write was lost" in result.stderr
        # The faulted subprocess is gone; a clean one serves everything.
        result = cli("store", "get", db, "k17")
        assert result.stdout == "v17\n"
        assert cli("store", "flush", db).returncode == 0
        cli("store", "verify", db)


# ---------------------------------------------------------------------------
# R007 at runtime: the hot paths never touch a text-side method
# ---------------------------------------------------------------------------


class TestRuntimeR007:
    TEXT_METHODS = (
        "encode",
        "decode",
        "encode_block",
        "decode_block",
        "key",
        "fields",
        "project",
    )

    def test_store_lifecycle_never_decodes(self, tmp_path, monkeypatch):
        calls = []

        def bomb(name):
            def method(self, *args, **kwargs):
                calls.append(name)
                raise AssertionError(
                    f"hot path called StoreFormat.{name}"
                )

            return method

        for name in self.TEXT_METHODS:
            monkeypatch.setattr(StoreFormat, name, bomb(name))
        store = Store(
            str(tmp_path / "db"), memory=16, fan_in=2, sync=False,
            codec="zlib",
        )
        try:
            fill(store, 200)
            for index in range(0, 200, 3):
                store.delete(b"k%06d" % index)
            store.flush()
            store.compact()
            assert store.get(b"k000001") == b"v1"
            assert store.get(b"k000003") is None
            assert len(list(store.scan())) > 0
            list(store.scan(b"k000010", b"k000050"))
        finally:
            store.close()
        # Reopen replays the WAL and re-reads the manifest — also
        # decode-free (the §17 boundaries are slices, not formats).
        with Store(str(tmp_path / "db"), sync=False) as store:
            store.count()
        assert calls == []
