"""DelimitedFormat key edge cases the relational operators hit.

Missing key columns, duplicate header-like rows, multi-column keys,
field projection, and numeric-vs-text ranked keys flowing through
join and group-by without a ``TypeError``.
"""

import pickle

import pytest

from repro.core.config import GeneratorSpec
from repro.core.records import DelimitedFormat, INT, STR, resolve_format
from repro.engine.planner import SortEngine


def engine_for(fmt, memory=16):
    return SortEngine(GeneratorSpec("lss", memory), record_format=fmt)


class TestMissingKeyColumn:
    def test_decode_names_row_and_column(self):
        fmt = DelimitedFormat(",", 3)
        with pytest.raises(ValueError, match="key column 3 does not exist"):
            fmt.decode("a,b")

    def test_multi_column_checks_largest(self):
        fmt = DelimitedFormat(",", (0, 5))
        with pytest.raises(ValueError, match="key column 5"):
            fmt.decode("a,b,c")

    def test_operator_surfaces_the_error(self):
        fmt = DelimitedFormat(",", 2)
        engine = engine_for(fmt)
        rows = ["a,b,c", "x,y"]  # second row lacks the key column
        with pytest.raises(ValueError, match="does not exist"):
            list(engine.distinct(fmt.decode(row) for row in rows))


class TestHeaderLikeRows:
    """CSV exports repeat header rows when files are concatenated;
    dedup must collapse them like any other duplicate record."""

    def test_duplicate_headers_dedup_to_one(self):
        fmt = DelimitedFormat(",", 0)
        rows = ["id,name", "3,carol", "id,name", "1,alice", "id,name"]
        engine = engine_for(fmt)
        out = [
            fmt.encode(r)
            for r in engine.distinct([fmt.decode(row) for row in rows])
        ]
        # Numeric ids rank before the text header key "id".
        assert out == ["1,alice", "3,carol", "id,name"]


class TestMultiColumnKeys:
    def test_orders_column_by_column(self):
        fmt = DelimitedFormat(",", (1, 0))
        rows = ["b,1", "a,2", "a,1", "b,0"]
        decoded = sorted(fmt.decode(row) for row in rows)
        assert [fmt.encode(r) for r in decoded] == [
            "b,0", "a,1", "b,1", "a,2"
        ]

    def test_arity_and_name(self):
        fmt = DelimitedFormat(",", (0, 2))
        assert fmt.key_arity == 2
        assert fmt.key_column == 0
        assert fmt.name == "csv[0,2]"
        assert DelimitedFormat(",", 1).key_arity == 1

    def test_resolve_format_accepts_sequences(self):
        fmt = resolve_format("tsv", key=(1, 0))
        assert fmt.key_columns == (1, 0)
        assert fmt.name == "tsv[1,0]"

    def test_pickle_round_trip(self):
        fmt = DelimitedFormat(",", (0, 2))
        clone = pickle.loads(pickle.dumps(fmt))
        assert clone.key_columns == (0, 2)
        assert clone.decode("a,b,c") == fmt.decode("a,b,c")

    def test_empty_key_columns_rejected(self):
        with pytest.raises(ValueError, match="at least one key column"):
            DelimitedFormat(",", ())

    def test_negative_key_column_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            DelimitedFormat(",", (0, -1))

    def test_multi_column_group_by(self):
        fmt = DelimitedFormat(",", (0, 1))
        rows = ["us,web,1", "us,app,2", "us,web,3", "de,web,4"]
        engine = engine_for(fmt)
        out = list(
            engine.aggregate(
                [fmt.decode(r) for r in rows], ("count", "sum"),
                value_column=2,
            )
        )
        assert out == ["de,web,1,4", "us,app,1,2", "us,web,2,4"]

    def test_multi_column_join(self):
        fmt = DelimitedFormat(",", (0, 1))
        left = [fmt.decode("us,web,1"), fmt.decode("us,app,2")]
        right = [fmt.decode("us,web,hit"), fmt.decode("de,web,miss")]
        engine = engine_for(fmt)
        out = list(engine.join(left, right, right_format=fmt))
        assert out == ["us,web,1,hit"]


class TestFieldProjection:
    def test_delimited_fields_and_project(self):
        fmt = DelimitedFormat(",", 1)
        record = fmt.decode("a,b,c")
        assert fmt.fields(record) == ["a", "b", "c"]
        assert fmt.project(record, (2, 0)) == ["c", "a"]

    def test_project_missing_column_raises(self):
        fmt = DelimitedFormat(",", 0)
        with pytest.raises(ValueError, match="column\\(s\\) 9 do not exist"):
            fmt.project(fmt.decode("a,b"), (9,))

    def test_project_negative_column_raises(self):
        # Python's from-the-end indexing would silently project the
        # wrong column for API callers passing computed indexes.
        fmt = DelimitedFormat(",", 0)
        with pytest.raises(ValueError, match="-1 do not exist"):
            fmt.project(fmt.decode("a,b,c"), (-1,))

    def test_scalar_formats_expose_one_field(self):
        assert INT.fields(42) == ["42"]
        assert INT.project(42, (0,)) == ["42"]
        assert STR.fields("hi") == ["hi"]
        with pytest.raises(ValueError, match="do not exist"):
            INT.project(42, (1,))


class TestRankedKeysThroughOperators:
    """Key columns mixing numbers and text must never TypeError."""

    ROWS = ["10,a", "beta,b", "2,c", "10.5,d", "alpha,e", "2,f"]

    def fmt(self):
        return DelimitedFormat(",", 0)

    def test_group_by_mixed_keys(self):
        fmt = self.fmt()
        engine = engine_for(fmt, memory=2)
        out = list(
            engine.aggregate([fmt.decode(r) for r in self.ROWS], ("count",))
        )
        # Numbers ascend first, then text lexicographically.
        assert out == ["2,2", "10,1", "10.5,1", "alpha,1", "beta,1"]

    def test_join_mixed_keys(self):
        fmt = self.fmt()
        engine = engine_for(fmt, memory=2)
        left = [fmt.decode(r) for r in self.ROWS]
        right = [fmt.decode("10,x"), fmt.decode("alpha,y")]
        out = list(engine.join(left, right, right_format=self.fmt()))
        assert out == ["10,a,x", "alpha,e,y"]

    def test_distinct_by_key_mixed(self):
        fmt = self.fmt()
        engine = engine_for(fmt, memory=2)
        out = [
            fmt.encode(r)
            for r in engine.distinct(
                [fmt.decode(r) for r in self.ROWS], by="key"
            )
        ]
        assert out == ["2,c", "10,a", "10.5,d", "alpha,e", "beta,b"]

    def test_numeric_equivalence_groups_across_spellings(self):
        # "2" and "2.0" parse to equal ranked keys; group-by must fold
        # them into one group keyed by the first row in sorted order.
        fmt = self.fmt()
        engine = engine_for(fmt)
        rows = ["2.0,a", "2,b"]
        out = list(
            engine.aggregate([fmt.decode(r) for r in rows], ("count",))
        )
        assert out == ["2,2"]
