"""Tests for the real-file merge reading strategies (satellite:
byte-identical output across naive/forecasting/double_buffering on the
six workload distributions, plus prefetch-correctness regressions)."""

import os
import threading

import pytest

from repro.core.config import GeneratorSpec
from repro.core.records import INT, STR
from repro.engine.block_io import write_sequence
from repro.engine.merge_reading import (
    READING_STRATEGIES,
    ForecastingReading,
    open_reading,
)
from repro.merge.kway import kway_merge
from repro.sort.spill import FileSpillSort, SpillSession
from repro.workloads.generators import DISTRIBUTIONS, make_input


class _Run:
    """Minimal run protocol: a path, no discard (files are kept)."""

    def __init__(self, path):
        self.path = path


def _write_runs(tmp_path, runs, fmt=INT):
    paths = []
    for index, run in enumerate(runs):
        path = str(tmp_path / f"run-{index:03d}.txt")
        write_sequence(path, sorted(run), fmt)
        paths.append(_Run(path))
    return paths


def _merge_with(reading, runs, fmt=INT, buffer_records=64):
    strategy = open_reading(reading, runs, fmt, buffer_records)
    try:
        return list(kway_merge(strategy.streams())), strategy.stats
    finally:
        strategy.close()


class TestByteIdenticalAcrossStrategies:
    @pytest.mark.parametrize("distribution", sorted(DISTRIBUTIONS))
    def test_six_distributions(self, distribution, tmp_path):
        data = list(make_input(distribution, 3_000, seed=11))
        chunk = 400
        runs = [data[i : i + chunk] for i in range(0, len(data), chunk)]
        paths = _write_runs(tmp_path, runs)
        outputs = {}
        for reading in READING_STRATEGIES:
            merged, _ = _merge_with(reading, paths, buffer_records=96)
            outputs[reading] = merged
        assert outputs["naive"] == sorted(data)
        assert outputs["forecasting"] == outputs["naive"]
        assert outputs["double_buffering"] == outputs["naive"]

    def test_string_records(self, tmp_path):
        words = [f"w{i:05d}" for i in range(900)]
        runs = [words[0::3], words[1::3], words[2::3]]
        paths = _write_runs(tmp_path, runs, STR)
        for reading in READING_STRATEGIES:
            merged, _ = _merge_with(reading, paths, STR, buffer_records=32)
            assert merged == sorted(words)

    def test_through_the_spill_backend(self, tmp_path):
        """Whole FileSpillSort sorts agree across reading strategies."""
        data = list(make_input("mixed_balanced", 6_000, seed=7))
        outputs = {}
        for reading in READING_STRATEGIES:
            sorter = FileSpillSort(
                GeneratorSpec("lss", 300).build(),
                fan_in=4,
                buffer_records=128,
                tmp_dir=str(tmp_path),
                reading=reading,
            )
            outputs[reading] = list(sorter.sort(iter(data)))
            assert sorter.reading_stats.strategy == reading
        assert outputs["forecasting"] == outputs["naive"] == sorted(data)
        assert outputs["double_buffering"] == outputs["naive"]


class TestPrefetchCorrectness:
    def test_forecasting_prefetch_preserves_block_order(self, tmp_path):
        # Tiny buffers force many refills, so every prefetched block
        # that lands out of sequence would corrupt the output order.
        runs = [list(range(i, 2_000, 7)) for i in range(7)]
        paths = _write_runs(tmp_path, runs)
        merged, stats = _merge_with("forecasting", paths, buffer_records=8)
        assert merged == sorted(v for run in runs for v in run)
        assert stats.prefetches > 0
        assert stats.prefetch_hits == stats.prefetches or (
            stats.prefetch_hits <= stats.prefetches
        )

    def test_forecasting_targets_the_run_that_empties_first(self, tmp_path):
        # Run 0's keys are all smaller than run 1's, so every forecast
        # must aim at run 0 until it is exhausted.
        runs = [list(range(0, 100)), list(range(1_000, 1_100))]
        paths = _write_runs(tmp_path, runs)
        strategy = open_reading("forecasting", paths, INT, 10)
        targets = []
        original = ForecastingReading._forecast

        def spying_forecast(self):
            original(self)
            if self._pending is not None:
                targets.append(self._pending[0])

        strategy._forecast = spying_forecast.__get__(strategy)
        try:
            merged = list(kway_merge(strategy.streams()))
        finally:
            strategy.close()
        assert merged == sorted(runs[0] + runs[1])
        assert targets, "forecasting never prefetched"
        # While run 0 is alive its tail is always the smallest.
        assert set(targets[:5]) == {0}

    def test_double_buffering_halves_the_buffer(self, tmp_path):
        paths = _write_runs(tmp_path, [list(range(100))])
        strategy = open_reading("double_buffering", paths, INT, 50)
        try:
            assert strategy.sources[0].block_records == 25
            merged = [r for s in strategy.streams() for r in s]
        finally:
            strategy.close()
        assert merged == list(range(100))

    def test_prefetched_blocks_count_toward_session_budget(self, tmp_path):
        session = SpillSession(str(tmp_path))
        runs = [list(range(i, 1_200, 3)) for i in range(3)]
        paths = _write_runs(tmp_path, runs)
        strategy = open_reading(
            "double_buffering", paths, INT, 64, session
        )
        try:
            merged = list(kway_merge(strategy.streams()))
        finally:
            strategy.close()
        assert merged == sorted(v for run in runs for v in run)
        # Both buffer halves are accounted per run — the one being
        # consumed and the in-flight refill — so the session bound
        # covers true peak memory, prefetching included.
        assert session.max_resident_records <= 3 * 64
        assert session.max_resident_records > 0
        assert session.max_open_readers <= 3
        assert session.open_readers == 0
        assert session.resident == 0

    def test_abandoned_prefetch_charge_released_on_close(self, tmp_path):
        session = SpillSession(str(tmp_path))
        paths = _write_runs(tmp_path, [list(range(500)), list(range(500))])
        strategy = open_reading("forecasting", paths, INT, 16, session)
        streams = strategy.streams()
        for _ in range(40):  # enough to trigger a prefetch, then stop
            next(streams[0])
        for stream in streams:
            stream.close()
        strategy.close()
        assert session.resident == 0

    def test_prefetch_threads_do_not_leak(self, tmp_path):
        before = threading.active_count()
        paths = _write_runs(tmp_path, [list(range(500)), list(range(500))])
        for _ in range(3):
            merged, _ = _merge_with("forecasting", paths, buffer_records=16)
            assert len(merged) == 1_000
        assert threading.active_count() <= before + 1


class TestLifecycle:
    def test_discardable_runs_removed_kept_runs_survive(self, tmp_path):
        session = SpillSession(str(tmp_path))
        from repro.sort.spill import SpilledRun

        data = sorted(range(200))
        spill_path = str(tmp_path / "spill.txt")
        keep_path = str(tmp_path / "keep.txt")
        write_sequence(spill_path, data, INT)
        write_sequence(keep_path, data, INT)
        runs = [
            SpilledRun(session, spill_path, 200, INT, 32),
            SpilledRun(session, keep_path, 200, INT, 32, keep=True),
        ]
        merged, _ = _merge_with("naive", runs, buffer_records=32)
        assert len(merged) == 400
        assert not os.path.exists(spill_path)
        assert os.path.exists(keep_path)

    def test_close_mid_merge_closes_handles(self, tmp_path):
        paths = _write_runs(tmp_path, [list(range(1_000))])
        strategy = open_reading("forecasting", paths, INT, 10)
        stream = strategy.streams()[0]
        for _ in range(25):
            next(stream)
        strategy.close()
        assert all(s.handle is None for s in strategy.sources)

    def test_unknown_strategy_is_a_clear_error(self, tmp_path):
        with pytest.raises(ValueError, match="unknown reading strategy"):
            open_reading("psychic", [], INT, 8)

    def test_invalid_buffer_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="block_records"):
            open_reading("naive", [], INT, 0)
