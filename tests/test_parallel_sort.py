"""Tests for the parallel partitioned sort (DESIGN.md §8)."""

import os
import time

import pytest
from _helpers import files_under

from repro.core.config import RECOMMENDED, GeneratorSpec
from repro.sort.parallel import (
    MIN_WORKER_MEMORY,
    PartitionedSort,
    hash_shard,
    range_cut_points,
    usable_cpus,
)
from repro.workloads.generators import make_input, random_input


def failing_encode(record) -> str:
    """Top-level (spawn-picklable) encoder that rejects one sentinel."""
    if record == 13:
        raise ValueError("poisoned record")
    return str(record)


def failing_decode(line: str) -> int:
    """Top-level (spawn-picklable) decoder that rejects one sentinel.

    Partitioning encodes happily; the failure only fires when a worker
    process reads its partition file back, so the error crosses the
    pool boundary.
    """
    value = int(line)
    if value == 13:
        raise ValueError("poisoned record")
    return value


class TestPartitioning:
    def test_hash_shard_deterministic_and_in_range(self):
        for value in list(range(100)) + [10**9, -5]:
            shard = hash_shard(value, 4)
            assert 0 <= shard < 4
            assert shard == hash_shard(value, 4)

    def test_hash_shard_balances_structured_keys(self):
        # Consecutive keys (the sorted dataset's structure) must spread
        # evenly, not stripe by key % workers.
        counts = [0] * 4
        for value in range(10_000):
            counts[hash_shard(value, 4)] += 1
        assert min(counts) > 1_500

    def test_hash_shard_deterministic_for_text_across_hash_seeds(self):
        # str hash() is randomised per process; text records must shard
        # via their encoded bytes so shard sizes (and the shards=[...]
        # report) are stable across invocations.
        import subprocess
        import sys

        script = (
            "import sys; sys.path.insert(0, 'src'); "
            "from repro.sort.parallel import hash_shard; "
            "print([hash_shard(w, 4) for w in "
            "('apple', 'pear', 'fig', ('k', 'row,1'))])"
        )
        outputs = {
            subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, check=True,
                env={"PYTHONHASHSEED": seed, "PATH": "/usr/bin:/bin"},
                cwd=__import__("os").path.dirname(
                    __import__("os").path.dirname(__file__)
                ),
            ).stdout
            for seed in ("1", "2", "77")
        }
        assert len(outputs) == 1, outputs

    def test_invalid_reading_rejected_at_construction(self):
        spec = GeneratorSpec("lss", 100)
        with pytest.raises(ValueError, match="unknown reading strategy"):
            PartitionedSort(spec, workers=2, reading="forcasting")

    def test_range_cut_points_are_ascending_quantiles(self):
        sample = list(range(1000, 0, -1))
        cuts = range_cut_points(sample, 4)
        assert cuts == sorted(cuts)
        assert len(cuts) == 3
        assert cuts[0] < cuts[1] < cuts[2] <= 1000

    def test_range_cut_points_degenerate(self):
        assert range_cut_points([], 4) == []
        assert range_cut_points([1, 2, 3], 1) == []


class TestCorrectness:
    @pytest.mark.parametrize("partition", ["hash", "range"])
    def test_matches_sorted(self, partition, tmp_path):
        data = list(random_input(20_000, seed=1))
        sorter = PartitionedSort(
            GeneratorSpec("lss", 1_000),
            workers=2,
            partition=partition,
            tmp_dir=str(tmp_path),
        )
        assert list(sorter.sort(iter(data))) == sorted(data)
        assert sum(sorter.shard_records) == len(data)
        assert files_under(tmp_path) == []
        if partition == "range":
            # The sampled boundaries are exposed for diagnostics.
            assert sorter.cut_points == sorted(sorter.cut_points)
            assert len(sorter.cut_points) == 1  # workers - 1

    def test_2wrs_spec_roundtrip(self, tmp_path):
        data = list(make_input("mixed_balanced", 12_000, seed=2))
        sorter = PartitionedSort(
            GeneratorSpec("2wrs", 800, RECOMMENDED),
            workers=2,
            partition="range",
            tmp_dir=str(tmp_path),
        )
        assert list(sorter.sort(iter(data))) == sorted(data)
        report = sorter.report
        assert report.records == len(data)
        assert report.runs == sum(r.runs for r in sorter.worker_reports)
        assert report.run_phase.cpu_ops == sum(
            r.run_phase.cpu_ops for r in sorter.worker_reports
        )
        assert report.run_phase.wall_time > 0

    def test_single_worker_fallback_is_in_process(self, tmp_path):
        data = list(random_input(5_000, seed=3))
        sorter = PartitionedSort(
            GeneratorSpec("lss", 500), workers=1, tmp_dir=str(tmp_path)
        )
        assert list(sorter.sort(iter(data))) == sorted(data)
        assert sorter.shard_records == [len(data)]

    def test_empty_input(self, tmp_path):
        sorter = PartitionedSort(
            GeneratorSpec("lss", 100), workers=2, tmp_dir=str(tmp_path)
        )
        assert list(sorter.sort(iter([]))) == []
        assert sorter.report.records == 0
        assert files_under(tmp_path) == []

    def test_more_workers_than_fan_in_forces_parent_passes(self, tmp_path):
        data = list(random_input(6_000, seed=4))
        sorter = PartitionedSort(
            GeneratorSpec("lss", 600),
            workers=3,
            fan_in=2,
            tmp_dir=str(tmp_path),
        )
        assert list(sorter.sort(iter(data))) == sorted(data)
        assert sorter.merge_passes > 1

    def test_byte_identical_with_serial_sort(self, tmp_path):
        from repro.sort.spill import FileSpillSort

        data = list(random_input(15_000, seed=5))
        serial = FileSpillSort(
            GeneratorSpec("lss", 1_000).build(), tmp_dir=str(tmp_path)
        )
        serial_path = tmp_path / "serial.txt"
        serial.sort_to_path(iter(data), str(serial_path))
        parallel = PartitionedSort(
            GeneratorSpec("lss", 1_000), workers=2, tmp_dir=str(tmp_path)
        )
        parallel_path = tmp_path / "parallel.txt"
        with open(parallel_path, "w", encoding="utf-8") as out:
            for record in parallel.sort(iter(data)):
                out.write(f"{record}\n")
        assert parallel_path.read_bytes() == serial_path.read_bytes()


class TestBrokerSharing:
    def test_workers_split_the_memory_budget(self, tmp_path):
        data = list(random_input(8_000, seed=6))
        sorter = PartitionedSort(
            GeneratorSpec("lss", 1_000), workers=2, tmp_dir=str(tmp_path)
        )
        list(sorter.sort(iter(data)))
        assert sorter.granted_memories == [500, 500]
        assert sum(sorter.granted_memories) <= sorter.total_memory

    def test_contended_pool_serialises_but_completes(self, tmp_path):
        # 3 workers each requesting max(MIN, 4 // 3) = MIN_WORKER_MEMORY
        # records from a 4-record pool: the grants cannot all coexist,
        # so the broker queues the overflow worker until a release.
        data = list(random_input(600, seed=7))
        sorter = PartitionedSort(
            GeneratorSpec("lss", 1_000),
            workers=3,
            total_memory=4,
            tmp_dir=str(tmp_path),
        )
        assert list(sorter.sort(iter(data))) == sorted(data)
        assert sorter.granted_memories == [MIN_WORKER_MEMORY] * 3

    def test_total_memory_overrides_spec_budget(self, tmp_path):
        data = list(random_input(2_000, seed=8))
        sorter = PartitionedSort(
            GeneratorSpec("lss", 100),
            workers=2,
            total_memory=800,
            tmp_dir=str(tmp_path),
        )
        assert list(sorter.sort(iter(data))) == sorted(data)
        assert sorter.granted_memories == [400, 400]


class TestCleanup:
    def test_abandoned_iterator_removes_work_dir(self, tmp_path):
        data = list(random_input(6_000, seed=9))
        sorter = PartitionedSort(
            GeneratorSpec("lss", 500), workers=2, tmp_dir=str(tmp_path)
        )
        merged = sorter.sort(iter(data))
        for _ in range(10):
            next(merged)
        merged.close()
        assert files_under(tmp_path) == []
        assert os.listdir(tmp_path) == []

    def test_partition_failure_removes_work_dir(self, tmp_path):
        data = list(range(100))  # contains the poisoned record 13
        sorter = PartitionedSort(
            GeneratorSpec("lss", 50),
            workers=2,
            tmp_dir=str(tmp_path),
            encode=failing_encode,
        )
        with pytest.raises(ValueError, match="poisoned"):
            list(sorter.sort(iter(data)))
        assert files_under(tmp_path) == []
        assert os.listdir(tmp_path) == []

    def test_worker_failure_removes_work_dir(self, tmp_path):
        data = list(range(100))  # contains the poisoned record 13
        sorter = PartitionedSort(
            GeneratorSpec("lss", 50),
            workers=2,
            tmp_dir=str(tmp_path),
            decode=failing_decode,
        )
        with pytest.raises(ValueError, match="poisoned"):
            list(sorter.sort(iter(data)))
        assert files_under(tmp_path) == []
        assert os.listdir(tmp_path) == []


class TestValidation:
    def test_invalid_parameters(self):
        spec = GeneratorSpec("lss", 100)
        with pytest.raises(ValueError):
            PartitionedSort(spec, workers=0)
        with pytest.raises(ValueError):
            PartitionedSort(spec, workers=2, partition="modulo")
        with pytest.raises(ValueError):
            PartitionedSort(spec, workers=2, fan_in=1)
        with pytest.raises(ValueError):
            PartitionedSort(spec, workers=2, total_memory=1)
        with pytest.raises(ValueError):
            PartitionedSort(spec, workers=2, sample_records=0)

    def test_invalid_spec(self):
        with pytest.raises(ValueError):
            GeneratorSpec("bogosort", 100)
        with pytest.raises(ValueError):
            GeneratorSpec("lss", 0)


class TestSpeedup:
    """The acceptance property: more workers -> proportionally faster.

    A wall-clock speedup needs real parallel hardware AND a quiet
    machine: on constrained boxes the workers serialise, and on noisy
    shared CI runners the measurement flakes near the ~2x Amdahl
    ceiling (partition + parent merge are sequential).  The assertion
    therefore runs only when explicitly requested via
    REPRO_RUN_SPEEDUP=1 on a >= 4-CPU machine;
    `benchmarks/bench_parallel_scale.py` records the honest sweep
    (including the machine's CPU count) into BENCH_parallel.json
    either way.
    """

    @pytest.mark.skipif(
        usable_cpus() < 4,
        reason=f"needs >= 4 usable CPUs for a 2x speedup, "
        f"have {usable_cpus()}",
    )
    @pytest.mark.skipif(
        not os.environ.get("REPRO_RUN_SPEEDUP"),
        reason="wall-clock speedup needs a quiet machine; "
        "opt in with REPRO_RUN_SPEEDUP=1",
    )
    def test_four_workers_twice_as_fast_as_one(self, tmp_path):
        records = int(os.environ.get("REPRO_SPEEDUP_RECORDS", "2000000"))
        data = list(random_input(records, seed=10))
        walls = {}
        outputs = {}
        for workers in (1, 4):
            sorter = PartitionedSort(
                GeneratorSpec("lss", 20_000),
                workers=workers,
                tmp_dir=str(tmp_path),
            )
            started = time.perf_counter()
            out_path = tmp_path / f"out-{workers}.txt"
            with open(out_path, "w", encoding="utf-8") as out:
                for record in sorter.sort(iter(data)):
                    out.write(f"{record}\n")
            walls[workers] = time.perf_counter() - started
            outputs[workers] = out_path
        assert outputs[4].read_bytes() == outputs[1].read_bytes()
        speedup = walls[1] / walls[4]
        assert speedup >= 2.0, (
            f"workers=4 must be >= 2x faster than workers=1 on "
            f"{records} records; measured {speedup:.2f}x "
            f"({walls[1]:.1f}s vs {walls[4]:.1f}s)"
        )
