"""Unit coverage for the ``repro.store`` LSM engine (DESIGN.md §17).

Bottom-up: the §17 meta layout, the memtable, one SSTable, the WAL,
the MANIFEST, then the :class:`~repro.store.Store` facade — basic
operations, flush/compaction structure, WAL-replay reopen, refusal
modes and the single-writer lock.  Crash/fault scenarios live in
``test_store_faults.py``; randomized oracle comparisons in
``test_store_differential.py``.
"""

import os

import pytest

from repro.engine.errors import ManifestError, SortError, StoreError
from repro.engine.resilience import artifact_valid
from repro.store import Store
from repro.store.format import (
    META_PREFIX,
    PUT,
    SEQNO_MAX,
    TOMBSTONE,
    encode_meta,
    meta_is_tombstone,
    meta_seqno,
    meta_value,
)
from repro.store.manifest import (
    MANIFEST_NAME,
    StoreManifest,
    replay_entries,
)
from repro.store.memtable import Memtable
from repro.store.oplog import (
    escape_bytes,
    format_item,
    parse_op_line,
    unescape_bytes,
)
from repro.store.sstable import SSTableReader, write_table
from repro.store.wal import WalWriter, replay_wal


def entry(key, seqno, value=b"", op=PUT):
    return key, encode_meta(seqno, op, value)


# ---------------------------------------------------------------------------
# §17 meta layout
# ---------------------------------------------------------------------------


class TestMetaFormat:
    def test_round_trip(self):
        meta = encode_meta(42, PUT, b"hello")
        assert meta_seqno(meta) == 42
        assert not meta_is_tombstone(meta)
        assert meta_value(meta) == b"hello"
        assert len(meta) == META_PREFIX + 5

    def test_tombstone(self):
        meta = encode_meta(7, TOMBSTONE)
        assert meta_is_tombstone(meta)
        assert meta_value(meta) == b""

    def test_newer_compares_smaller(self):
        # The inverted seqno is the LWW trick: after a merge the
        # newest write of a key is the *minimum* meta, so groupby's
        # first element wins with zero decoding.
        old = encode_meta(10, PUT, b"old")
        new = encode_meta(11, PUT, b"new")
        assert new < old

    def test_seqno_bounds(self):
        with pytest.raises(ValueError):
            encode_meta(-1, PUT)
        with pytest.raises(ValueError):
            encode_meta(SEQNO_MAX + 1, PUT)


class TestOplogCodec:
    def test_escape_round_trips_every_byte(self):
        data = bytes(range(256))
        assert unescape_bytes(escape_bytes(data)) == data

    def test_separator_bytes_are_escaped(self):
        token = escape_bytes(b"a\tb\nc\\d")
        assert "\t" not in token and "\n" not in token
        assert unescape_bytes(token) == b"a\tb\nc\\d"

    def test_non_ascii_text_stores_utf8(self):
        assert unescape_bytes("café") == "café".encode("utf-8")

    @pytest.mark.parametrize("bad", ["tail\\", "\\q", "\\x2", "\\xzz"])
    def test_malformed_escape_raises(self, bad):
        with pytest.raises(ValueError):
            unescape_bytes(bad)

    def test_parse_op_lines(self):
        assert parse_op_line("put\tk\tv\n", 1) == ("put", b"k", b"v")
        assert parse_op_line("del\tk\n", 2) == ("del", b"k", b"")
        assert parse_op_line("\n", 3) is None
        with pytest.raises(ValueError, match="line 4"):
            parse_op_line("put\tk\n", 4)
        with pytest.raises(ValueError, match="unknown op"):
            parse_op_line("upsert\tk\tv\n", 5)

    def test_format_item_round_trip(self):
        line = format_item(b"\x00key", b"val\tue")
        op, key, value = parse_op_line("put\t" + line, 1)
        assert (key, value) == (b"\x00key", b"val\tue")


# ---------------------------------------------------------------------------
# Memtable
# ---------------------------------------------------------------------------


class TestMemtable:
    def test_newest_write_per_key(self):
        table = Memtable()
        table.apply(PUT, 1, b"a", b"1")
        table.apply(PUT, 2, b"a", b"2")
        table.apply(TOMBSTONE, 3, b"b", b"")
        assert len(table) == 2
        assert table.max_seqno == 3
        assert meta_value(table.lookup(b"a")) == b"2"
        assert meta_is_tombstone(table.lookup(b"b"))

    def test_sorted_and_range_entries(self):
        table = Memtable()
        for index, key in enumerate([b"c", b"a", b"b", b"d"], start=1):
            table.apply(PUT, index, key, key)
        keys = [key for key, _ in table.sorted_entries()]
        assert keys == [b"a", b"b", b"c", b"d"]
        ranged = [key for key, _ in table.range_entries(b"b", b"d")]
        assert ranged == [b"b", b"c"]

    def test_payload_accounting_on_replace(self):
        table = Memtable()
        table.apply(PUT, 1, b"k", b"long-value")
        table.apply(PUT, 2, b"k", b"s")
        assert table.payload_bytes == len(b"k") + len(
            encode_meta(2, PUT, b"s")
        )


# ---------------------------------------------------------------------------
# SSTable
# ---------------------------------------------------------------------------


def build_entries(count, prefix=b"key", value=b"v"):
    return [
        entry(b"%s%06d" % (prefix, index), index + 1, value)
        for index in range(count)
    ]


class TestSSTable:
    @pytest.mark.parametrize("codec", ["none", "zlib", "front+zlib"])
    def test_round_trip_multiple_blocks(self, tmp_path, codec):
        path = str(tmp_path / "t.sst")
        entries = build_entries(100)
        info = write_table(
            path, entries, max_seqno=100, block_records=8, codec=codec
        )
        assert info.records == 100
        assert info.min_key == entries[0][0]
        assert info.max_key == entries[-1][0]
        assert artifact_valid(path, info.records, info.crc32)
        with SSTableReader(path) as reader:
            assert reader.records == 100
            assert reader.codec == codec
            assert reader.max_seqno == 100
            assert list(reader.entries()) == entries

    def test_lookup(self, tmp_path):
        path = str(tmp_path / "t.sst")
        entries = build_entries(50)
        write_table(path, entries, max_seqno=50, block_records=7)
        with SSTableReader(path) as reader:
            for key, meta in entries[:: 9]:
                assert reader.lookup(key) == meta
            assert reader.lookup(b"key000010x") is None
            assert reader.lookup(b"aaa") is None  # below min_key
            assert reader.lookup(b"zzz") is None  # above max_key

    def test_range_scan(self, tmp_path):
        path = str(tmp_path / "t.sst")
        entries = build_entries(40)
        write_table(path, entries, max_seqno=40, block_records=6)
        with SSTableReader(path) as reader:
            got = list(reader.entries(entries[13][0], entries[29][0]))
            assert got == entries[13:29]
            assert list(reader.entries(b"zzz")) == []
            assert list(reader.entries(None, b"aaa")) == []

    def test_empty_stream_refused(self, tmp_path):
        with pytest.raises(ValueError, match="empty sstable"):
            write_table(str(tmp_path / "t.sst"), [], max_seqno=1)

    def test_torn_footer_rejected(self, tmp_path):
        path = str(tmp_path / "t.sst")
        write_table(path, build_entries(10), max_seqno=10)
        data = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(data[:-9])  # crash mid-footer
        with pytest.raises(StoreError, match="torn|magic"):
            SSTableReader(path)

    def test_corrupt_index_rejected(self, tmp_path):
        path = str(tmp_path / "t.sst")
        info = write_table(path, build_entries(10), max_seqno=10)
        data = bytearray(open(path, "rb").read())
        data[info.disk_bytes - 40] ^= 0xFF  # inside the index body
        with open(path, "wb") as handle:
            handle.write(bytes(data))
        with pytest.raises(StoreError, match="checksum"):
            SSTableReader(path)

    def test_corrupt_data_block_fails_on_read(self, tmp_path):
        path = str(tmp_path / "t.sst")
        write_table(path, build_entries(20), max_seqno=20, block_records=5)
        data = bytearray(open(path, "rb").read())
        data[30] ^= 0x01  # somewhere in block 0's body
        with open(path, "wb") as handle:
            handle.write(bytes(data))
        reader = SSTableReader(path)  # index is intact
        try:
            with pytest.raises(SortError):
                list(reader.entries())
        finally:
            reader.close()


# ---------------------------------------------------------------------------
# WAL
# ---------------------------------------------------------------------------


class TestWal:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "w.log")
        writer = WalWriter(path, sync=False)
        writer.append(0, 1, b"a", b"1")
        writer.append(1, 2, b"b", b"")
        writer.append(0, 3, b"WREC", b"WREC inside a value")
        writer.close()
        assert list(replay_wal(path)) == [
            (0, 1, b"a", b"1"),
            (1, 2, b"b", b""),
            (0, 3, b"WREC", b"WREC inside a value"),
        ]

    def test_torn_tail_tolerated(self, tmp_path):
        path = str(tmp_path / "w.log")
        writer = WalWriter(path, sync=False)
        writer.append(0, 1, b"a", b"1")
        writer.append(0, 2, b"b", b"2")
        writer.close()
        data = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(data[:-5])  # crash mid-append of record 2
        assert list(replay_wal(path)) == [(0, 1, b"a", b"1")]

    def test_mid_file_corruption_rejected(self, tmp_path):
        path = str(tmp_path / "w.log")
        writer = WalWriter(path, sync=False)
        writer.append(0, 1, b"a", b"x" * 64)
        writer.append(0, 2, b"b", b"y" * 64)
        writer.close()
        data = bytearray(open(path, "rb").read())
        data[20] ^= 0xFF  # inside record 1, with record 2 intact after
        with open(path, "wb") as handle:
            handle.write(bytes(data))
        with pytest.raises(StoreError):
            list(replay_wal(path))

    def test_missing_wal_propagates(self, tmp_path):
        # The Store decides which WALs exist (via the manifest floor);
        # replay itself treats a missing file as the error it is.
        with pytest.raises(OSError):
            list(replay_wal(str(tmp_path / "absent.log")))


# ---------------------------------------------------------------------------
# Manifest
# ---------------------------------------------------------------------------


FP = {"format": "repro-store", "table_version": 1}


def table_record(name, filenum, level=0, records=1):
    return {
        "type": "flush",
        "file": name,
        "filenum": filenum,
        "level": level,
        "records": records,
        "crc32": 0,
        "min_key": "00",
        "max_key": "ff",
        "max_seqno": filenum,
        "wal_floor": 0,
    }


class TestManifest:
    def test_create_load_round_trip(self, tmp_path):
        path = str(tmp_path / MANIFEST_NAME)
        manifest = StoreManifest.create(path, FP)
        manifest.append(table_record("sst-00000000.sst", 0))
        manifest.close()
        loaded = StoreManifest.load(path, FP)
        tables, wal_floor, max_filenum = replay_entries(
            path, loaded.entries
        )
        assert set(tables) == {"sst-00000000.sst"}
        assert max_filenum == 0
        loaded.close()

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / MANIFEST_NAME)
        StoreManifest.create(path, FP).close()
        with pytest.raises(ManifestError, match="fingerprint"):
            StoreManifest.load(path, {"format": "other"})

    def test_torn_tail_repaired(self, tmp_path):
        path = str(tmp_path / MANIFEST_NAME)
        manifest = StoreManifest.create(path, FP)
        manifest.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "flu')  # crash mid-append
        loaded = StoreManifest.load(path, FP)
        loaded.append(table_record("sst-00000001.sst", 1))
        loaded.close()
        tables, _, _ = replay_entries(path, StoreManifest._load(path))
        assert set(tables) == {"sst-00000001.sst"}

    def test_mid_file_corruption_rejected(self, tmp_path):
        path = str(tmp_path / MANIFEST_NAME)
        manifest = StoreManifest.create(path, FP)
        manifest.append(table_record("sst-00000000.sst", 0))
        manifest.close()
        lines = open(path, "r", encoding="utf-8").readlines()
        lines[0] = lines[0][:10] + "\n"
        with open(path, "w", encoding="utf-8") as handle:
            handle.writelines(lines)
        with pytest.raises(ManifestError):
            StoreManifest.load(path, FP)

    def test_compact_of_unknown_table_rejected(self, tmp_path):
        path = str(tmp_path / MANIFEST_NAME)
        manifest = StoreManifest.create(path, FP)
        manifest.append({"type": "compact", "removes": ["sst-x.sst"]})
        with pytest.raises(ManifestError, match="not a live table"):
            replay_entries(path, manifest.entries)
        manifest.close()

    def test_checkpoint_compacts_and_survives(self, tmp_path):
        path = str(tmp_path / MANIFEST_NAME)
        manifest = StoreManifest.create(path, FP)
        for index in range(20):
            manifest.append(table_record(f"sst-{index:08d}.sst", index))
        manifest.append(
            {
                "type": "compact",
                "removes": [f"sst-{i:08d}.sst" for i in range(20)],
            }
        )
        manifest.checkpoint()
        assert len(manifest.entries) == 2  # meta + state
        manifest.append(table_record("sst-00000099.sst", 99))
        manifest.close()
        loaded = StoreManifest.load(path, FP)
        tables, _, max_filenum = replay_entries(path, loaded.entries)
        assert set(tables) == {"sst-00000099.sst"}
        assert max_filenum == 99
        loaded.close()


# ---------------------------------------------------------------------------
# Store facade
# ---------------------------------------------------------------------------


class TestStoreBasics:
    def test_put_get_delete_overwrite(self, tmp_path):
        with Store(str(tmp_path / "db"), sync=False) as store:
            store.put(b"a", b"1")
            store.put(b"b", b"2")
            store.put(b"a", b"1-new")
            store.delete(b"b")
            assert store.get(b"a") == b"1-new"
            assert store.get(b"b") is None
            assert store.get(b"missing") is None
            assert list(store.scan()) == [(b"a", b"1-new")]

    def test_bytes_only(self, tmp_path):
        with Store(str(tmp_path / "db"), sync=False) as store:
            with pytest.raises(TypeError):
                store.put("text", b"v")
            with pytest.raises(TypeError):
                store.put(b"k", "text")

    def test_closed_store_raises(self, tmp_path):
        store = Store(str(tmp_path / "db"), sync=False)
        store.close()
        with pytest.raises(StoreError, match="closed"):
            store.get(b"a")
        with pytest.raises(StoreError, match="closed"):
            store.put(b"a", b"1")

    def test_single_writer_lock(self, tmp_path):
        path = str(tmp_path / "db")
        with Store(path, sync=False):
            with pytest.raises(StoreError, match="locked"):
                Store(path, sync=False)

    def test_refuses_foreign_directory(self, tmp_path):
        target = tmp_path / "not-a-store"
        target.mkdir()
        (target / "precious.txt").write_text("do not clobber")
        with pytest.raises(StoreError, match="refusing"):
            Store(str(target), sync=False)
        assert (target / "precious.txt").read_text() == "do not clobber"


class TestStoreFlushCompact:
    def test_flush_threshold_and_levels(self, tmp_path):
        store = Store(
            str(tmp_path / "db"), memory=10, fan_in=2, sync=False,
            block_records=4,
        )
        try:
            for index in range(100):
                store.put(b"k%04d" % index, b"v%d" % index)
            assert store.flushed_tables > 0
            summary = store.verify()
            assert all(
                count <= 2 for count in summary["levels"].values()
            )
            assert store.count() == 100
            assert store.get(b"k0042") == b"v42"
        finally:
            store.close()

    def test_scan_equals_fully_compacted(self, tmp_path):
        store = Store(str(tmp_path / "db"), memory=8, sync=False)
        try:
            for index in range(60):
                store.put(b"k%03d" % index, b"v%d" % index)
            for index in range(0, 60, 3):
                store.delete(b"k%03d" % index)
            before = list(store.scan())
            store.compact()
            assert list(store.scan()) == before
            assert len(store.table_names()) == 1
            assert len(before) == 40
        finally:
            store.close()

    def test_compact_drops_tombstones_and_annihilates(self, tmp_path):
        store = Store(str(tmp_path / "db"), memory=4, sync=False)
        try:
            for index in range(12):
                store.put(b"k%d" % index, b"v")
            for index in range(12):
                store.delete(b"k%d" % index)
            store.compact()
            assert store.table_names() == []
            assert list(store.scan()) == []
        finally:
            store.close()

    def test_no_auto_compact(self, tmp_path):
        store = Store(
            str(tmp_path / "db"), memory=4, fan_in=2, sync=False,
            auto_compact=False,
        )
        try:
            for index in range(40):
                store.put(b"k%02d" % index, b"v")
            levels = store.verify()["levels"]
            assert set(levels) == {"0"}
            assert levels["0"] > 2
        finally:
            store.close()

    def test_range_scan(self, tmp_path):
        store = Store(str(tmp_path / "db"), memory=6, sync=False)
        try:
            for index in range(30):
                store.put(b"k%03d" % index, b"%d" % index)
            got = [key for key, _ in store.scan(b"k005", b"k011")]
            assert got == [b"k%03d" % i for i in range(5, 11)]
        finally:
            store.close()


class TestStoreReopen:
    def test_wal_replay_is_the_normal_reopen(self, tmp_path):
        path = str(tmp_path / "db")
        with Store(path, memory=1000, sync=False) as store:
            for index in range(50):
                store.put(b"k%03d" % index, b"v%d" % index)
            store.delete(b"k010")
            before = list(store.scan())
            assert store.table_names() == []  # nothing flushed
        with Store(path, sync=False) as store:
            assert list(store.scan()) == before
            store.put(b"zz", b"new-after-reopen")
            assert store.get(b"zz") == b"new-after-reopen"

    def test_reopen_after_flushes_and_compactions(self, tmp_path):
        path = str(tmp_path / "db")
        with Store(path, memory=7, fan_in=2, sync=False) as store:
            for index in range(80):
                store.put(b"k%03d" % index, b"v%d" % index)
            for index in range(0, 80, 7):
                store.delete(b"k%03d" % index)
            before = list(store.scan())
        with Store(path, sync=False) as store:
            assert list(store.scan()) == before
            store.verify()

    def test_seqno_continues_across_reopen(self, tmp_path):
        path = str(tmp_path / "db")
        with Store(path, sync=False) as store:
            store.put(b"a", b"old")
        with Store(path, sync=False) as store:
            store.put(b"a", b"new")
            assert store.get(b"a") == b"new"
        with Store(path, sync=False) as store:
            # The reopened write must shadow the first one everywhere —
            # a seqno restart would make "old" win the LWW merge.
            store.flush()
            store.compact()
            assert store.get(b"a") == b"new"

    def test_orphan_sweep(self, tmp_path):
        path = str(tmp_path / "db")
        with Store(path, sync=False) as store:
            store.put(b"a", b"1")
            store.flush()
        orphan = os.path.join(path, "sst-00000099.sst")
        write_table(orphan, build_entries(3), max_seqno=3)
        tmp_file = os.path.join(path, "MANIFEST.tmp")
        with open(tmp_file, "w") as handle:
            handle.write("torn checkpoint")
        with Store(path, sync=False) as store:
            assert store.get(b"a") == b"1"
        assert not os.path.exists(orphan)
        assert not os.path.exists(tmp_file)

    def test_checkpoint_on_busy_reopen(self, tmp_path):
        path = str(tmp_path / "db")
        with Store(path, memory=2, sync=False, auto_compact=False) as store:
            for index in range(600):
                store.put(b"k%04d" % index, b"v")
        with Store(path, sync=False) as store:
            # Reopen found > CHECKPOINT_ENTRIES manifest lines and
            # rewrote them as meta + state.
            assert len(store._manifest.entries) <= 3
            assert store.count() == 600
