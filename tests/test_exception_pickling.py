"""R005 regression guard: exceptions must cross a spawn boundary.

The PR-4 incident class: a worker raising an exception whose
``__init__`` signature cannot be replayed from ``args`` kills the
multiprocessing pool's result-handler thread on unpickle, and the
parent blocks forever — no error, no traceback, just a hang.  These
tests pin the fix for every exception class in ``repro.engine.errors``
and ``repro.testing.faults``: an in-process pickle round-trip must
preserve type and message, and a real ``spawn`` worker raising each
class must propagate it to the parent as the same type (with a timeout
so a regression fails instead of hanging the suite).

The discovery and instantiation helpers are shared with the R005 lint
rule (``repro.lint.rules_pickle``) so both checks exercise classes the
same way.
"""

from __future__ import annotations

import importlib
import multiprocessing
import pickle

import pytest

from repro.engine import errors as errors_module
from repro.lint.rules_pickle import exception_classes_of, sample_instance
from repro.testing import faults as faults_module

MODULES = (errors_module, faults_module)


def _class_specs():
    specs = []
    for module in MODULES:
        for name in sorted(exception_classes_of(module)):
            specs.append((module.__name__, name))
    return specs


def _params():
    return [
        pytest.param(module_name, class_name, id=f"{module_name}.{class_name}")
        for module_name, class_name in _class_specs()
    ]


def test_discovery_finds_the_known_classes():
    names = {name for _, name in _class_specs()}
    assert {"SortError", "CorruptBlockError", "JournalError"} <= names
    assert "FaultInjected" in names


@pytest.mark.parametrize("module_name,class_name", _params())
def test_roundtrip_in_process(module_name, class_name):
    cls = getattr(importlib.import_module(module_name), class_name)
    instance = sample_instance(cls)
    clone = pickle.loads(pickle.dumps(instance))
    assert type(clone) is cls
    assert str(clone) == str(instance)
    assert clone.args == instance.args


def _raise_sample(spec):
    """Spawn-pool worker: build and raise the named exception class."""
    module_name, class_name = spec
    cls = getattr(importlib.import_module(module_name), class_name)
    raise sample_instance(cls)


def test_spawn_worker_exceptions_propagate():
    """Each class raised in a spawn worker reaches the parent intact.

    ``get(timeout=...)`` is the point: before the ``__reduce__`` fix a
    broken class didn't error here, it hung the pool forever.
    """
    ctx = multiprocessing.get_context("spawn")
    with ctx.Pool(1) as pool:
        for spec in _class_specs():
            module_name, class_name = spec
            result = pool.apply_async(_raise_sample, (spec,))
            with pytest.raises(BaseException) as excinfo:
                result.get(timeout=90)
            assert type(excinfo.value).__name__ == class_name, (
                f"{module_name}.{class_name} came back as "
                f"{type(excinfo.value).__name__}: {excinfo.value}"
            )
