"""Tests for the ANOVA assumption diagnostics (Appendix B.3)."""

import numpy as np
import pytest

from repro.stats.anova import Factor, FactorialDesign
from repro.stats.diagnostics import (
    cell_residuals,
    check_assumptions,
    residual_histogram,
)


def build_design(sigma_by_level=None, seed=0, reps=15):
    rng = np.random.default_rng(seed)
    fj = Factor("j", ("small", "large"))
    fk = Factor("k", ("a", "b"))
    design = FactorialDesign([fj, fk])
    sigma_by_level = sigma_by_level or {"small": 1.0, "large": 1.0}
    for j in fj.levels:
        for k, shift in (("a", 0.0), ("b", 3.0)):
            for _ in range(reps):
                design.add(
                    (j, k), 10 + shift + rng.normal(0, sigma_by_level[j])
                )
    return design


class TestResiduals:
    def test_residuals_sum_to_zero_per_cell(self):
        design = build_design()
        report = cell_residuals(design, ["j", "k"])
        assert report.residuals.mean() == pytest.approx(0.0, abs=1e-9)

    def test_standardized_unit_scale(self):
        design = build_design()
        report = cell_residuals(design, ["j", "k"])
        assert report.standardized.std(ddof=1) == pytest.approx(1.0, rel=1e-6)

    def test_constant_data_zero_residuals(self):
        design = FactorialDesign([Factor("j", ("x", "y"))])
        for level in ("x", "y"):
            for _ in range(5):
                design.add((level,), 7.0)
        report = cell_residuals(design, ["j"])
        assert np.all(report.residuals == 0.0)
        assert np.all(report.standardized == 0.0)

    def test_histogram_covers_all_residuals(self):
        design = build_design()
        report = cell_residuals(design, ["j", "k"])
        histogram = residual_histogram(report, bins=9)
        assert sum(count for _, count in histogram) == len(report.residuals)


class TestAssumptionChecks:
    def test_wellbehaved_design_passes(self):
        design = build_design()
        report = check_assumptions(design, ["j", "k"])
        assert report.normality_ok()
        assert report.homoscedastic("j")
        assert report.homoscedastic("k")
        assert report.wls_recommended() == []
        assert abs(report.independence_correlation) < 0.4

    def test_heteroscedastic_factor_detected(self):
        """The paper's Section 5.2.5 situation: variance depends on j."""
        design = build_design(sigma_by_level={"small": 0.2, "large": 6.0})
        report = check_assumptions(design, ["j", "k"])
        assert not report.homoscedastic("j")
        assert "j" in report.wls_recommended()

    def test_nonnormal_residuals_detected(self):
        rng = np.random.default_rng(1)
        design = FactorialDesign([Factor("j", ("x", "y"))])
        for level in ("x", "y"):
            # Heavy-tailed / bimodal noise.
            for _ in range(40):
                design.add((level,), float(rng.choice([-5, 5]) + rng.normal(0, 0.1)))
        report = check_assumptions(design, ["j"])
        assert not report.normality_ok()

    def test_degenerate_design_does_not_crash(self):
        design = FactorialDesign([Factor("j", ("x", "y"))])
        design.add(("x",), 1.0)
        design.add(("y",), 1.0)
        report = check_assumptions(design, ["j"])
        assert report.normality_p == 1.0
