"""Store jobs on the resident service (ISSUE 10).

Three layers, mirroring ``test_service.py``: spec-level (validation
and canonical payloads), runner-level (``run_job`` called directly
with an explicit grant), and scheduler-level (jobs queued through the
broker like any sort).  Plus the pin promised in ``repro/cli.py``: the
submit parser's ``--op`` choices are a literal to keep the CLI import
cheap, and this test holds that literal equal to
``service.jobs.JOB_OPS``.
"""

import json
import os
import threading
import time

import pytest

from repro.cli import build_parser
from repro.service.jobs import (
    JOB_OPS,
    STORE_OPS,
    JobSpec,
    job_id_for,
)
from repro.service.runner import run_job
from repro.service.scheduler import TERMINAL_STATES, JobScheduler
from repro.store import Store
from repro.store.oplog import parse_op_line


def write_oplog(path, puts=200, deletes=50):
    lines = []
    for index in range(puts):
        lines.append(f"put\tk{index:05d}\tv{index}\n")
    for index in range(deletes):
        lines.append(f"del\tk{index:05d}\n")
    path.write_text("".join(lines))
    return puts, deletes


def _wait(scheduler, job_id, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        payload = scheduler.status(job_id)
        assert payload is not None
        if payload["status"] in TERMINAL_STATES:
            return payload
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} never finished: {payload}")


# ---------------------------------------------------------------------------
# spec-level
# ---------------------------------------------------------------------------


class TestStoreJobSpec:
    def test_store_ops_are_job_ops(self):
        assert set(STORE_OPS) <= set(JOB_OPS)

    def test_ingest_requires_input_and_store(self):
        with pytest.raises(ValueError, match="store directory"):
            JobSpec(op="store_ingest", input="/tmp/ops.tsv").validate()
        with pytest.raises(ValueError, match="input"):
            JobSpec(op="store_ingest", input="", store="/tmp/db").validate()
        JobSpec(
            op="store_ingest", input="/tmp/ops.tsv", store="/tmp/db"
        ).validate()

    @pytest.mark.parametrize("op", ["store_scan", "store_compact"])
    def test_scan_and_compact_are_inputless(self, op):
        JobSpec(op=op, input="", store="/tmp/db").validate()
        with pytest.raises(ValueError, match="store directory"):
            JobSpec(op=op, input="").validate()

    def test_store_rejected_on_non_store_ops(self):
        with pytest.raises(ValueError, match="store only applies"):
            JobSpec(op="sort", input="/tmp/in.txt", store="/tmp/db").validate()

    def test_payload_round_trip(self):
        spec = JobSpec.from_payload(
            {
                "op": "store_ingest",
                "input": "ops.tsv",
                "store": "db",
                "memory": 64,
                "spill_codec": "zlib",
            }
        )
        assert spec.store == os.path.abspath("db")
        again = JobSpec.from_payload(spec.to_payload())
        assert again == spec
        assert job_id_for(again) == job_id_for(spec)

    def test_inputless_payload_keeps_empty_input(self):
        spec = JobSpec.from_payload({"op": "store_scan", "store": "db"})
        assert spec.input == ""  # not abspath("") == cwd

    def test_ids_distinguish_store_jobs(self):
        scan = JobSpec(op="store_scan", input="", store="/tmp/db")
        compact = JobSpec(op="store_compact", input="", store="/tmp/db")
        elsewhere = JobSpec(op="store_scan", input="", store="/tmp/other")
        ids = {job_id_for(scan), job_id_for(compact), job_id_for(elsewhere)}
        assert len(ids) == 3

    def test_submit_parser_choices_pin_job_ops(self):
        # cli.py keeps the submit --op choices as a literal so the CLI
        # never imports the service package; this is the pin that keeps
        # the literal honest.
        parser = build_parser()
        for action in parser._subparsers._group_actions:
            submit = action.choices.get("submit")
            if submit is None:
                continue
            for option in submit._actions:
                if "--op" in getattr(option, "option_strings", ()):
                    assert tuple(option.choices) == JOB_OPS
                    return
        raise AssertionError("submit --op not found in parser")


# ---------------------------------------------------------------------------
# runner-level
# ---------------------------------------------------------------------------


class TestRunStoreJobs:
    def run(self, spec, tmp_path, memory=100):
        result = str(tmp_path / f"result-{spec.op}.out")
        outcome = run_job(
            spec,
            memory=memory,
            work_dir=str(tmp_path / "work"),
            result_path=result,
            cancel=threading.Event(),
            job_id="t",
        )
        return outcome, result

    def test_ingest_scan_compact_pipeline(self, tmp_path):
        puts, deletes = write_oplog(tmp_path / "ops.tsv", 300, 80)
        db = str(tmp_path / "db")
        ingest = JobSpec(
            op="store_ingest", input=str(tmp_path / "ops.tsv"),
            store=db, memory=32,
        )
        outcome, result = self.run(ingest, tmp_path, memory=32)
        assert outcome.records_out == puts + deletes
        report = json.loads(open(result).read())
        assert report["applied"] == puts + deletes
        # memory=32 is the broker grant *and* the memtable budget —
        # the ingest must have spilled tables, not ballooned in RAM.
        assert report["flushed_tables"] > 0

        scan = JobSpec(op="store_scan", input="", store=db)
        outcome, result = self.run(scan, tmp_path)
        assert outcome.records_out == puts - deletes
        lines = open(result).read().splitlines()
        assert len(lines) == puts - deletes
        parsed = [
            parse_op_line("put\t" + line + "\n", i)
            for i, line in enumerate(lines, start=1)
        ]
        keys = [key for _, key, _ in parsed]
        assert keys == sorted(keys)
        assert keys[0] == b"k%05d" % deletes

        compact = JobSpec(op="store_compact", input="", store=db)
        outcome, result = self.run(compact, tmp_path)
        assert outcome.records_out == puts - deletes
        summary = json.loads(open(result).read())
        assert summary["tables"] == 1
        assert summary["table_records"] == puts - deletes

        # The job closed the store cleanly: it reopens lock-free and
        # serves exactly the ingested state.
        with Store(db, sync=False) as store:
            assert store.get(b"k%05d" % (deletes + 1)) is not None
            assert store.get(b"k00000") is None

    def test_ingest_bad_line_fails_cleanly(self, tmp_path):
        (tmp_path / "ops.tsv").write_text("put\tk\tv\nnonsense\n")
        db = str(tmp_path / "db")
        spec = JobSpec(
            op="store_ingest", input=str(tmp_path / "ops.tsv"), store=db
        )
        with pytest.raises(ValueError, match="line 2"):
            self.run(spec, tmp_path)
        # The failed job released the store lock on its way out.
        with Store(db, sync=False):
            pass


# ---------------------------------------------------------------------------
# scheduler-level
# ---------------------------------------------------------------------------


class TestStoreThroughScheduler:
    def test_store_jobs_share_the_broker_pool(self, tmp_path):
        write_oplog(tmp_path / "ops.tsv", 400, 100)
        db = str(tmp_path / "db")
        scheduler = JobScheduler(
            str(tmp_path / "spool"), total_memory=100, job_workers=2
        )
        try:
            ingest = JobSpec(
                op="store_ingest", input=str(tmp_path / "ops.tsv"),
                store=db, memory=64,
            )
            payload = _wait(scheduler, scheduler.submit(ingest).job_id)
            assert payload["status"] == "done", payload["error"]
            assert payload["granted"] == 64
            assert payload["records_out"] == 500
            assert scheduler.broker.free == 100

            scan = JobSpec(op="store_scan", input="", store=db, memory=16)
            payload = _wait(scheduler, scheduler.submit(scan).job_id)
            assert payload["status"] == "done", payload["error"]
            assert payload["records_out"] == 300

            compact = JobSpec(
                op="store_compact", input="", store=db, memory=16
            )
            payload = _wait(scheduler, scheduler.submit(compact).job_id)
            assert payload["status"] == "done", payload["error"]
            assert payload["report"]["tables"] == 1
        finally:
            scheduler.shutdown()

    def test_failed_store_job_reports_not_crashes(self, tmp_path):
        (tmp_path / "ops.tsv").write_text("garbage line\n")
        scheduler = JobScheduler(
            str(tmp_path / "spool"), total_memory=100
        )
        try:
            spec = JobSpec(
                op="store_ingest", input=str(tmp_path / "ops.tsv"),
                store=str(tmp_path / "db"), memory=10,
            )
            payload = _wait(scheduler, scheduler.submit(spec).job_id)
            assert payload["status"] == "failed"
            assert "line 1" in payload["error"]
            assert scheduler.broker.free == 100
        finally:
            scheduler.shutdown()
