"""Tests for the real-file streaming spill backend (DESIGN.md §6)."""

import os

import pytest
from _helpers import files_under

from repro.core.config import RECOMMENDED
from repro.core.two_way import TwoWayReplacementSelection
from repro.runs.load_sort_store import LoadSortStore
from repro.runs.replacement_selection import ReplacementSelection
from repro.sort.spill import DEFAULT_BUFFER_RECORDS, FileSpillSort
from repro.workloads.generators import make_input, random_input


class TestCorrectness:
    @pytest.mark.parametrize(
        "generator_factory",
        [
            lambda: ReplacementSelection(200),
            lambda: TwoWayReplacementSelection(200, RECOMMENDED),
            lambda: LoadSortStore(200),
        ],
        ids=["RS", "2WRS", "LSS"],
    )
    def test_matches_sorted(self, generator_factory, tmp_path):
        data = list(random_input(5_000, seed=1))
        sorter = FileSpillSort(generator_factory(), tmp_dir=str(tmp_path))
        assert list(sorter.sort(iter(data))) == sorted(data)

    @pytest.mark.parametrize(
        "dataset",
        ["sorted", "reverse_sorted", "alternating", "mixed_balanced"],
    )
    def test_every_distribution_with_2wrs(self, dataset, tmp_path):
        data = list(make_input(dataset, 4_000, seed=2))
        sorter = FileSpillSort(
            TwoWayReplacementSelection(150, RECOMMENDED), tmp_dir=str(tmp_path)
        )
        assert list(sorter.sort(iter(data))) == sorted(data)

    def test_multi_pass_merge(self, tmp_path):
        # 5_000 records at memory 50 -> ~50 runs; fan-in 3 forces
        # multiple intermediate passes.
        data = list(random_input(5_000, seed=3))
        sorter = FileSpillSort(
            LoadSortStore(50), fan_in=3, tmp_dir=str(tmp_path)
        )
        assert list(sorter.sort(iter(data))) == sorted(data)
        assert sorter.merge_passes > 1

    def test_empty_input(self, tmp_path):
        sorter = FileSpillSort(ReplacementSelection(10), tmp_dir=str(tmp_path))
        assert list(sorter.sort(iter([]))) == []
        assert sorter.report.runs == 0

    def test_custom_serialisation(self, tmp_path):
        data = [3.5, -1.25, 2.0, 0.5]
        sorter = FileSpillSort(
            ReplacementSelection(2),
            tmp_dir=str(tmp_path),
            encode=repr,
            decode=float,
        )
        assert list(sorter.sort(iter(data))) == sorted(data)

    def test_string_keys_round_trip_exactly(self, tmp_path):
        # Regression: readers must strip the line terminator before
        # calling decode — a plain-str decoder used to hand back
        # records with a trailing newline glued on.
        data = ["pear", "apple", "fig", "cherry", "banana", "date"]
        sorter = FileSpillSort(
            ReplacementSelection(2),
            tmp_dir=str(tmp_path),
            encode=str,
            decode=str,
        )
        assert list(sorter.sort(iter(data))) == sorted(data)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            FileSpillSort(ReplacementSelection(10), fan_in=1)
        with pytest.raises(ValueError):
            FileSpillSort(ReplacementSelection(10), buffer_records=0)
        with pytest.raises(ValueError, match="unknown reading strategy"):
            # A typo'd strategy must fail at construction, not after
            # the whole run-generation phase has been spilled.
            FileSpillSort(ReplacementSelection(10), reading="forcasting")


class TestReport:
    def test_report_populated_after_consumption(self, tmp_path):
        data = list(random_input(3_000, seed=4))
        sorter = FileSpillSort(ReplacementSelection(100), tmp_dir=str(tmp_path))
        merged = sorter.sort(iter(data))
        assert sorter.report is None  # nothing consumed yet
        list(merged)
        report = sorter.report
        assert report is not None
        assert report.records == 3_000
        assert report.runs == sorter.generator.stats.runs_out
        assert report.run_phase.wall_time > 0
        assert report.merge_phase.wall_time > 0
        assert report.run_phase.cpu_ops > 0
        assert "records in" in report.summary()


class TestSingletonGroups:
    def test_trailing_singleton_not_rewritten(self, tmp_path):
        calls = []

        class CountingSpill(FileSpillSort):
            def _merge_to_file(self, session, group, counter):
                calls.append(len(group))
                return super()._merge_to_file(session, group, counter)

        # 4 runs at fan-in 3 -> groups of [3, 1]: the lone trailing run
        # must be carried forward, not copied through a pointless merge.
        data = list(random_input(4_000, seed=9))
        sorter = CountingSpill(LoadSortStore(1_000), fan_in=3,
                               tmp_dir=str(tmp_path))
        assert list(sorter.sort(iter(data))) == sorted(data)
        assert calls == [3]


class TestConcurrentSorts:
    def test_overlapping_sorts_are_isolated(self, tmp_path):
        # Regression: per-sort state used to live on the instance, so a
        # second sort() clobbered the first one's temp dir (leaking it)
        # and cross-wired the instrumentation.
        a = list(random_input(3_000, seed=10))
        b = list(random_input(3_000, seed=11))
        sorter = FileSpillSort(LoadSortStore(100), tmp_dir=str(tmp_path))
        first = sorter.sort(iter(a))
        head = [next(first) for _ in range(5)]
        second = sorter.sort(iter(b))
        got_b = list(second)
        got_a = head + list(first)
        assert got_a == sorted(a)
        assert got_b == sorted(b)
        assert files_under(tmp_path) == []


class TestCleanup:
    def test_temp_files_removed_after_sort(self, tmp_path):
        data = list(random_input(2_000, seed=5))
        sorter = FileSpillSort(ReplacementSelection(50), tmp_dir=str(tmp_path))
        list(sorter.sort(iter(data)))
        assert files_under(tmp_path) == []

    def test_temp_files_removed_when_abandoned(self, tmp_path):
        data = list(random_input(2_000, seed=6))
        sorter = FileSpillSort(ReplacementSelection(50), tmp_dir=str(tmp_path))
        merged = sorter.sort(iter(data))
        for _ in range(10):
            next(merged)
        merged.close()
        assert files_under(tmp_path) == []

    def test_no_temp_files_survive_run_generation_failure(self, tmp_path):
        # Regression guard: an input stream raising mid-stream (after
        # runs have already spilled) must still tear the whole per-sort
        # temp directory down on its way out.
        def poisoned():
            yield from random_input(1_500, seed=12)
            raise RuntimeError("input stream died")

        sorter = FileSpillSort(ReplacementSelection(50), tmp_dir=str(tmp_path))
        with pytest.raises(RuntimeError, match="input stream died"):
            list(sorter.sort(poisoned()))
        assert files_under(tmp_path) == []
        assert os.listdir(tmp_path) == []

    def test_no_temp_files_survive_merge_failure(self, tmp_path):
        # A decode error during the merge phase aborts after the spill
        # files exist and readers are open; cleanup must still run.
        decoded = 0

        def fragile_decode(line):
            nonlocal decoded
            decoded += 1
            if decoded > 500:
                raise ValueError("decode died mid-merge")
            return int(line)

        data = list(random_input(2_000, seed=13))
        sorter = FileSpillSort(
            ReplacementSelection(50),
            tmp_dir=str(tmp_path),
            decode=fragile_decode,
        )
        with pytest.raises(ValueError, match="decode died"):
            list(sorter.sort(iter(data)))
        assert files_under(tmp_path) == []
        assert os.listdir(tmp_path) == []

    def test_immediate_failure_leaves_nothing(self, tmp_path):
        def dead_on_arrival():
            raise RuntimeError("no records at all")
            yield  # pragma: no cover

        sorter = FileSpillSort(ReplacementSelection(50), tmp_dir=str(tmp_path))
        with pytest.raises(RuntimeError, match="no records at all"):
            list(sorter.sort(dead_on_arrival()))
        assert os.listdir(tmp_path) == []


class TestBoundedMemory:
    """The acceptance property: memory stays O(memory + fan_in * buffer)."""

    def test_half_million_records_bounded_buffering(self, tmp_path):
        n = 500_000
        memory = 10_000
        data = list(random_input(n, seed=7))
        sorter = FileSpillSort(LoadSortStore(memory), tmp_dir=str(tmp_path))
        assert list(sorter.sort(iter(data))) == sorted(data)
        # ~50 runs at this memory: well past the fan-in, so the merge
        # ran in passes over lazy readers, never holding all runs.
        assert sorter.generator.stats.runs_out > sorter.fan_in
        assert sorter.max_open_readers <= sorter.fan_in
        # Read buffers never held more than one chunk per open reader —
        # thousands of times smaller than the 500k input.
        assert (
            sorter.max_resident_records
            <= sorter.fan_in * DEFAULT_BUFFER_RECORDS
        )
        assert sorter.max_resident_records < n // 10

    def test_reader_buffers_respect_buffer_records(self, tmp_path):
        data = list(random_input(20_000, seed=8))
        sorter = FileSpillSort(
            LoadSortStore(1_000),
            fan_in=4,
            buffer_records=256,
            tmp_dir=str(tmp_path),
        )
        assert list(sorter.sort(iter(data))) == sorted(data)
        assert sorter.max_open_readers <= 4
        assert sorter.max_resident_records <= 4 * 256
