"""Tests for the real-file streaming spill backend (DESIGN.md §6)."""

import os

import pytest

from repro.core.config import RECOMMENDED
from repro.core.two_way import TwoWayReplacementSelection
from repro.runs.load_sort_store import LoadSortStore
from repro.runs.replacement_selection import ReplacementSelection
from repro.sort.spill import DEFAULT_BUFFER_RECORDS, FileSpillSort
from repro.workloads.generators import make_input, random_input


def files_under(root) -> list:
    found = []
    for dirpath, _, filenames in os.walk(root):
        found.extend(os.path.join(dirpath, f) for f in filenames)
    return found


class TestCorrectness:
    @pytest.mark.parametrize(
        "generator_factory",
        [
            lambda: ReplacementSelection(200),
            lambda: TwoWayReplacementSelection(200, RECOMMENDED),
            lambda: LoadSortStore(200),
        ],
        ids=["RS", "2WRS", "LSS"],
    )
    def test_matches_sorted(self, generator_factory, tmp_path):
        data = list(random_input(5_000, seed=1))
        sorter = FileSpillSort(generator_factory(), tmp_dir=str(tmp_path))
        assert list(sorter.sort(iter(data))) == sorted(data)

    @pytest.mark.parametrize(
        "dataset",
        ["sorted", "reverse_sorted", "alternating", "mixed_balanced"],
    )
    def test_every_distribution_with_2wrs(self, dataset, tmp_path):
        data = list(make_input(dataset, 4_000, seed=2))
        sorter = FileSpillSort(
            TwoWayReplacementSelection(150, RECOMMENDED), tmp_dir=str(tmp_path)
        )
        assert list(sorter.sort(iter(data))) == sorted(data)

    def test_multi_pass_merge(self, tmp_path):
        # 5_000 records at memory 50 -> ~50 runs; fan-in 3 forces
        # multiple intermediate passes.
        data = list(random_input(5_000, seed=3))
        sorter = FileSpillSort(
            LoadSortStore(50), fan_in=3, tmp_dir=str(tmp_path)
        )
        assert list(sorter.sort(iter(data))) == sorted(data)
        assert sorter.merge_passes > 1

    def test_empty_input(self, tmp_path):
        sorter = FileSpillSort(ReplacementSelection(10), tmp_dir=str(tmp_path))
        assert list(sorter.sort(iter([]))) == []
        assert sorter.report.runs == 0

    def test_custom_serialisation(self, tmp_path):
        data = [3.5, -1.25, 2.0, 0.5]
        sorter = FileSpillSort(
            ReplacementSelection(2),
            tmp_dir=str(tmp_path),
            encode=repr,
            decode=float,
        )
        assert list(sorter.sort(iter(data))) == sorted(data)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            FileSpillSort(ReplacementSelection(10), fan_in=1)
        with pytest.raises(ValueError):
            FileSpillSort(ReplacementSelection(10), buffer_records=0)


class TestReport:
    def test_report_populated_after_consumption(self, tmp_path):
        data = list(random_input(3_000, seed=4))
        sorter = FileSpillSort(ReplacementSelection(100), tmp_dir=str(tmp_path))
        merged = sorter.sort(iter(data))
        assert sorter.report is None  # nothing consumed yet
        list(merged)
        report = sorter.report
        assert report is not None
        assert report.records == 3_000
        assert report.runs == sorter.generator.stats.runs_out
        assert report.run_phase.wall_time > 0
        assert report.merge_phase.wall_time > 0
        assert report.run_phase.cpu_ops > 0
        assert "records in" in report.summary()


class TestSingletonGroups:
    def test_trailing_singleton_not_rewritten(self, tmp_path):
        calls = []

        class CountingSpill(FileSpillSort):
            def _merge_to_file(self, session, group, counter):
                calls.append(len(group))
                return super()._merge_to_file(session, group, counter)

        # 4 runs at fan-in 3 -> groups of [3, 1]: the lone trailing run
        # must be carried forward, not copied through a pointless merge.
        data = list(random_input(4_000, seed=9))
        sorter = CountingSpill(LoadSortStore(1_000), fan_in=3,
                               tmp_dir=str(tmp_path))
        assert list(sorter.sort(iter(data))) == sorted(data)
        assert calls == [3]


class TestConcurrentSorts:
    def test_overlapping_sorts_are_isolated(self, tmp_path):
        # Regression: per-sort state used to live on the instance, so a
        # second sort() clobbered the first one's temp dir (leaking it)
        # and cross-wired the instrumentation.
        a = list(random_input(3_000, seed=10))
        b = list(random_input(3_000, seed=11))
        sorter = FileSpillSort(LoadSortStore(100), tmp_dir=str(tmp_path))
        first = sorter.sort(iter(a))
        head = [next(first) for _ in range(5)]
        second = sorter.sort(iter(b))
        got_b = list(second)
        got_a = head + list(first)
        assert got_a == sorted(a)
        assert got_b == sorted(b)
        assert files_under(tmp_path) == []


class TestCleanup:
    def test_temp_files_removed_after_sort(self, tmp_path):
        data = list(random_input(2_000, seed=5))
        sorter = FileSpillSort(ReplacementSelection(50), tmp_dir=str(tmp_path))
        list(sorter.sort(iter(data)))
        assert files_under(tmp_path) == []

    def test_temp_files_removed_when_abandoned(self, tmp_path):
        data = list(random_input(2_000, seed=6))
        sorter = FileSpillSort(ReplacementSelection(50), tmp_dir=str(tmp_path))
        merged = sorter.sort(iter(data))
        for _ in range(10):
            next(merged)
        merged.close()
        assert files_under(tmp_path) == []


class TestBoundedMemory:
    """The acceptance property: memory stays O(memory + fan_in * buffer)."""

    def test_half_million_records_bounded_buffering(self, tmp_path):
        n = 500_000
        memory = 10_000
        data = list(random_input(n, seed=7))
        sorter = FileSpillSort(LoadSortStore(memory), tmp_dir=str(tmp_path))
        assert list(sorter.sort(iter(data))) == sorted(data)
        # ~50 runs at this memory: well past the fan-in, so the merge
        # ran in passes over lazy readers, never holding all runs.
        assert sorter.generator.stats.runs_out > sorter.fan_in
        assert sorter.max_open_readers <= sorter.fan_in
        # Read buffers never held more than one chunk per open reader —
        # thousands of times smaller than the 500k input.
        assert (
            sorter.max_resident_records
            <= sorter.fan_in * DEFAULT_BUFFER_RECORDS
        )
        assert sorter.max_resident_records < n // 10

    def test_reader_buffers_respect_buffer_records(self, tmp_path):
        data = list(random_input(20_000, seed=8))
        sorter = FileSpillSort(
            LoadSortStore(1_000),
            fan_in=4,
            buffer_records=256,
            tmp_dir=str(tmp_path),
        )
        assert list(sorter.sort(iter(data))) == sorted(data)
        assert sorter.max_open_readers <= 4
        assert sorter.max_resident_records <= 4 * 256
