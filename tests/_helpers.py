"""Shared helpers for the test suite.

Not a conftest: ``benchmarks/conftest.py`` already claims that module
name, so these live under a unique name and are imported explicitly.
"""

import os


def files_under(root) -> list:
    """Every file (recursively) below ``root`` — cleanup assertions."""
    found = []
    for dirpath, _, filenames in os.walk(root):
        found.extend(os.path.join(dirpath, f) for f in filenames)
    return found
