"""Shared helpers for the test suite.

Not a conftest: ``benchmarks/conftest.py`` already claims that module
name, so these live under a unique name and are imported explicitly.
"""

import hashlib
import os
import zlib


def files_under(root) -> list:
    """Every file (recursively) below ``root`` — cleanup assertions."""
    found = []
    for dirpath, _, filenames in os.walk(root):
        found.extend(os.path.join(dirpath, f) for f in filenames)
    return found


#: Master seed of the stress/differential sweeps; CI pins it,
#: developers can roam (same convention as REPRO_PROPERTY_SEED).
STRESS_SEED = int(os.environ.get("REPRO_STRESS_SEED", "0"))


def stress_seed(*parts) -> int:
    """Deterministic per-case seed derived from the stress master seed."""
    text = ":".join(str(part) for part in (STRESS_SEED,) + parts)
    return zlib.crc32(text.encode("utf-8"))


def stress_case(**kwargs) -> str:
    """One-line reproduction recipe for stress-test assertion messages."""
    fields = ", ".join(f"{k}={v!r}" for k, v in kwargs.items())
    return (
        f"failing case [{fields}] — reproduce with "
        f"REPRO_STRESS_SEED={STRESS_SEED}"
    )


def sha256_file(path) -> str:
    """Hex SHA-256 of a file's bytes (byte-identity assertions)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()
