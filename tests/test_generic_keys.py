"""The algorithms are generic over key types, not just the paper's ints."""

import itertools
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.two_way import TwoWayReplacementSelection
from repro.merge.kway import merge_runs
from repro.runs.replacement_selection import ReplacementSelection


class TestFloatKeys:
    def test_rs_sorts_floats(self):
        rng = random.Random(1)
        data = [rng.random() for _ in range(2_000)]
        runs = list(ReplacementSelection(100).generate_runs(data))
        assert sorted(itertools.chain(*runs)) == sorted(data)
        for run in runs:
            assert run == sorted(run)

    def test_2wrs_sorts_floats(self):
        rng = random.Random(2)
        data = [rng.gauss(0.0, 100.0) for _ in range(2_000)]
        runs = list(TwoWayReplacementSelection(100).generate_runs(data))
        assert sorted(itertools.chain(*runs)) == sorted(data)
        for run in runs:
            assert run == sorted(run)


class TestTupleKeys:
    def test_rs_sorts_composite_keys(self):
        rng = random.Random(3)
        data = [(rng.randrange(10), rng.randrange(1000)) for _ in range(1_000)]
        runs = list(ReplacementSelection(64).generate_runs(data))
        assert sorted(itertools.chain(*runs)) == sorted(data)

    def test_merge_handles_tuples(self):
        runs = [sorted([(1, "a"), (3, "c")]), sorted([(2, "b")])]
        assert merge_runs(runs) == [(1, "a"), (2, "b"), (3, "c")]

    def test_2wrs_sorts_composite_keys_without_victim(self):
        """Order-based routing works for any comparable keys; the
        victim buffer's gap arithmetic needs numeric keys, so it is
        disabled here."""
        from repro.core.config import TwoWayConfig

        rng = random.Random(4)
        data = [(rng.randrange(10), rng.randrange(1000)) for _ in range(1_000)]
        config = TwoWayConfig(
            buffer_setup="input",
            buffer_fraction=0.02,
            input_heuristic="median",
            output_heuristic="alternate",
        )
        runs = list(TwoWayReplacementSelection(64, config).generate_runs(data))
        assert sorted(itertools.chain(*runs)) == sorted(data)
        for run in runs:
            assert run == sorted(run)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.floats(allow_nan=False, allow_infinity=False), max_size=200),
    st.integers(2, 30),
)
def test_2wrs_floats_property(data, memory):
    runs = list(TwoWayReplacementSelection(memory).generate_runs(data))
    assert sorted(itertools.chain(*runs)) == sorted(data)
    for run in runs:
        assert run == sorted(run)
