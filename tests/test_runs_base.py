"""Tests for the run-generator base API and analytic cost accounting."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.runs.base import RunGenerator, RunGeneratorStats, log_cost


class TestLogCost:
    def test_small_heaps_cost_one(self):
        assert log_cost(0) == 1
        assert log_cost(1) == 1

    def test_powers_of_two(self):
        assert log_cost(2) == 1
        assert log_cost(1024) == 10

    def test_rounds_up(self):
        assert log_cost(3) == 2
        assert log_cost(1025) == 11

    @given(st.integers(1, 10**9))
    def test_monotone(self, n):
        assert log_cost(n) <= log_cost(n + 1)


class TestStats:
    def test_note_run_accumulates(self):
        stats = RunGeneratorStats()
        stats.note_run(10)
        stats.note_run(30)
        assert stats.runs_out == 2
        assert stats.records_out == 40
        assert stats.run_lengths == [10, 30]
        assert stats.average_run_length == pytest.approx(20.0)

    def test_average_of_empty_is_zero(self):
        assert RunGeneratorStats().average_run_length == 0.0

    def test_reset_clears_everything(self):
        stats = RunGeneratorStats()
        stats.records_in = 5
        stats.cpu_ops = 7
        stats.note_run(3)
        stats.reset()
        assert stats.records_in == 0
        assert stats.cpu_ops == 0
        assert stats.runs_out == 0
        assert stats.run_lengths == []


class TestRunGeneratorBase:
    def test_rejects_zero_memory(self):
        class Dummy(RunGenerator):
            def generate_runs(self, records):
                yield from ()

        with pytest.raises(ValueError):
            Dummy(0)

    def test_helpers_delegate(self):
        class TwoRuns(RunGenerator):
            def generate_runs(self, records):
                yield [1, 2]
                yield [3]

        generator = TwoRuns(10)
        assert generator.run_lengths([]) == [2, 1]
        assert generator.count_runs([]) == 2
