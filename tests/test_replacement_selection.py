"""Tests for classic replacement selection (Chapter 3, Theorems 1, 3, 5)."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runs.replacement_selection import ReplacementSelection
from repro.workloads.generators import (
    alternating_input,
    random_input,
    reverse_sorted_input,
    sorted_input,
)


def runs_of(memory, records):
    return list(ReplacementSelection(memory).generate_runs(records))


class TestBasics:
    def test_empty_input(self):
        assert runs_of(10, []) == []

    def test_input_smaller_than_memory(self):
        assert runs_of(100, [3, 1, 2]) == [[1, 2, 3]]

    def test_invalid_memory(self):
        with pytest.raises(ValueError):
            ReplacementSelection(0)

    def test_runs_are_sorted(self):
        runs = runs_of(5, [9, 3, 7, 1, 8, 2, 6, 4, 5, 0])
        for run in runs:
            assert run == sorted(run)

    def test_multiset_preserved(self):
        data = [9, 3, 7, 1, 8, 2, 6, 4, 5, 0] * 3
        runs = runs_of(4, data)
        assert sorted(itertools.chain(*runs)) == sorted(data)

    def test_stats_updated(self):
        rs = ReplacementSelection(5)
        runs = list(rs.generate_runs(range(20, 0, -1)))
        assert rs.stats.records_in == 20
        assert rs.stats.runs_out == len(runs)
        assert rs.stats.cpu_ops > 0
        assert rs.stats.run_lengths == [len(r) for r in runs]

    def test_generator_is_lazy(self):
        rs = ReplacementSelection(4)
        gen = rs.generate_runs(iter(range(100, 0, -1)))
        first = next(gen)
        assert len(first) == 4  # worst case: one memory-full

    def test_count_runs_helper(self):
        assert ReplacementSelection(5).count_runs(range(100, 0, -1)) == 20


class TestTheorems:
    def test_theorem_1_sorted_input_single_run(self):
        """Sorted input => one run with everything."""
        data = list(sorted_input(5_000))
        runs = runs_of(100, data)
        assert len(runs) == 1
        assert runs[0] == data

    def test_theorem_3_reverse_input_memory_sized_runs(self):
        """Reverse input => every run exactly the memory size."""
        memory = 100
        runs = runs_of(memory, reverse_sorted_input(5_000))
        assert all(len(run) == memory for run in runs)
        assert len(runs) == 50

    def test_theorem_5_alternating_roughly_double_memory(self):
        """Alternating sections (k >> m) => runs average ~2x memory."""
        memory = 200
        data = list(alternating_input(40_000, sections=8, noise=100, seed=1))
        runs = runs_of(memory, data)
        average = len(data) / len(runs)
        assert 1.5 * memory <= average <= 2.5 * memory

    def test_snowplow_random_input_double_memory(self):
        """Section 3.5: random input => runs average ~2x memory."""
        memory = 250
        data = list(random_input(50_000, seed=3))
        runs = runs_of(memory, data)
        average = len(data) / len(runs)
        assert 1.7 * memory <= average <= 2.3 * memory

    def test_first_run_at_least_memory(self):
        """Every RS run is at least as long as the memory (except last)."""
        runs = runs_of(50, random_input(5_000, seed=1))
        for run in runs[:-1]:
            assert len(run) >= 50


@settings(max_examples=100, deadline=None)
@given(
    st.lists(st.integers(-10_000, 10_000), max_size=400),
    st.integers(1, 50),
)
def test_rs_runs_sorted_and_complete(data, memory):
    runs = runs_of(memory, data)
    for run in runs:
        assert run == sorted(run)
    assert sorted(itertools.chain(*runs)) == sorted(data)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(), min_size=1, max_size=300), st.integers(1, 40))
def test_rs_all_runs_at_least_memory_except_last(data, memory):
    runs = runs_of(memory, data)
    for run in runs[:-1]:
        assert len(run) >= memory
