"""Tests for run-tagged records and heaps (Section 3.3)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.heaps.run_heap import (
    BottomRunHeap,
    TaggedRecord,
    TopRunHeap,
    bottom_before,
    top_before,
)


class TestTaggedRecord:
    def test_payload_ignored_by_equality(self):
        assert TaggedRecord(0, 5, "a") == TaggedRecord(0, 5, "b")

    def test_is_frozen(self):
        import pytest

        with pytest.raises(Exception):
            TaggedRecord(0, 5).key = 7


class TestOrderingPredicates:
    def test_top_orders_by_run_first(self):
        assert top_before(TaggedRecord(0, 100), TaggedRecord(1, 1))
        assert not top_before(TaggedRecord(1, 1), TaggedRecord(0, 100))

    def test_top_orders_by_key_within_run(self):
        assert top_before(TaggedRecord(0, 1), TaggedRecord(0, 2))

    def test_bottom_orders_by_run_first(self):
        # Next-run records sink below current ones even with large keys.
        assert bottom_before(TaggedRecord(0, 1), TaggedRecord(1, 100))

    def test_bottom_orders_descending_within_run(self):
        assert bottom_before(TaggedRecord(0, 9), TaggedRecord(0, 3))


class TestTopRunHeap:
    def test_current_run_pops_ascending(self):
        heap = TopRunHeap(TaggedRecord(0, k) for k in (5, 1, 3))
        assert [heap.pop().key for _ in range(3)] == [1, 3, 5]

    def test_next_run_stays_below(self):
        heap = TopRunHeap()
        heap.push(TaggedRecord(1, 0))  # next run, tiny key
        heap.push(TaggedRecord(0, 1000))  # current run, large key
        assert heap.pop() == TaggedRecord(0, 1000)
        assert heap.pop() == TaggedRecord(1, 0)

    def test_top_of_next_run_means_memory_flushed(self):
        # Section 3.3's argument: if the top belongs to the next run,
        # every record does.
        heap = TopRunHeap()
        for key in (4, 7, 2):
            heap.push(TaggedRecord(1, key))
        assert heap.peek().run == 1
        assert all(r.run == 1 for r in heap)


class TestBottomRunHeap:
    def test_current_run_pops_descending(self):
        heap = BottomRunHeap(TaggedRecord(0, k) for k in (5, 1, 3))
        assert [heap.pop().key for _ in range(3)] == [5, 3, 1]

    def test_next_run_stays_below(self):
        heap = BottomRunHeap()
        heap.push(TaggedRecord(1, 10**9))
        heap.push(TaggedRecord(0, -5))
        assert heap.pop() == TaggedRecord(0, -5)


@settings(max_examples=150)
@given(
    st.lists(
        st.tuples(st.integers(0, 2), st.integers(-1000, 1000)), min_size=1
    )
)
def test_top_run_heap_total_order(pairs):
    heap = TopRunHeap(TaggedRecord(r, k) for r, k in pairs)
    popped = [heap.pop() for _ in range(len(pairs))]
    assert popped == sorted(popped, key=lambda t: (t.run, t.key))


@settings(max_examples=150)
@given(
    st.lists(
        st.tuples(st.integers(0, 2), st.integers(-1000, 1000)), min_size=1
    )
)
def test_bottom_run_heap_total_order(pairs):
    heap = BottomRunHeap(TaggedRecord(r, k) for r, k in pairs)
    popped = [heap.pop() for _ in range(len(pairs))]
    assert popped == sorted(popped, key=lambda t: (t.run, -t.key))
