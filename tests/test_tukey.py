"""Tests for Tukey HSD pairwise comparisons (Section 5.2)."""

import numpy as np
import pytest
from scipy import stats as sstats

from repro.stats.anova import Factor, FactorialDesign, one_way_anova
from repro.stats.tukey import tukey_hsd


def design_with_means(means, sigma=0.5, reps=10, seed=0):
    rng = np.random.default_rng(seed)
    factor = Factor("g", tuple(means))
    design = FactorialDesign([factor])
    for level, mean in means.items():
        for _ in range(reps):
            design.add((level,), mean + rng.normal(0, sigma))
    return design


class TestTukey:
    def test_separates_distinct_means(self):
        design = design_with_means({"a": 0.0, "b": 5.0, "c": 10.0})
        result = tukey_hsd(design, one_way_anova(design, "g"), ["g"])
        for comparison in result.comparisons:
            assert comparison.rejects_equality()

    def test_fails_to_separate_equal_means(self):
        design = design_with_means({"a": 5.0, "b": 5.0, "c": 20.0})
        result = tukey_hsd(design, one_way_anova(design, "g"), ["g"])
        matrix = result.significance_matrix()
        assert matrix[("a", "b")] > 0.05
        assert matrix[("a", "c")] < 0.05

    def test_best_levels_include_ties(self):
        design = design_with_means({"a": 5.0, "b": 5.05, "c": 20.0})
        result = tukey_hsd(design, one_way_anova(design, "g"), ["g"])
        best = result.best_levels()
        assert set(best) == {"a", "b"}

    def test_matches_scipy_tukey(self):
        rng = np.random.default_rng(5)
        groups = {
            "a": 10 + rng.normal(0, 1, 15),
            "b": 12 + rng.normal(0, 1, 15),
            "c": 10.5 + rng.normal(0, 1, 15),
        }
        design = FactorialDesign([Factor("g", tuple(groups))])
        for level, values in groups.items():
            for value in values:
                design.add((level,), float(value))
        ours = tukey_hsd(design, one_way_anova(design, "g"), ["g"])
        reference = sstats.tukey_hsd(*groups.values())
        matrix = ours.significance_matrix()
        labels = list(groups)
        for i, a in enumerate(labels):
            for j, b in enumerate(labels):
                if i < j:
                    assert matrix[(a, b)] == pytest.approx(
                        reference.pvalue[i, j], abs=1e-6
                    )

    def test_combination_levels(self):
        rng = np.random.default_rng(6)
        fa = Factor("a", ("x", "y"))
        fb = Factor("b", ("p", "q"))
        design = FactorialDesign([fa, fb])
        for a in fa.levels:
            for b in fb.levels:
                mean = 0.0 if (a, b) == ("x", "p") else 8.0
                for _ in range(10):
                    design.add((a, b), mean + rng.normal(0, 0.5))
        from repro.stats.anova import anova

        model = anova(design, [("a",), ("b",), ("a", "b")])
        result = tukey_hsd(design, model, ["a", "b"])
        assert set(result.means) == {"x/p", "x/q", "y/p", "y/q"}
        assert result.best_levels() == ["x/p"]

    def test_single_level_combination_rejected(self):
        design = design_with_means({"a": 1.0, "b": 2.0})
        model = one_way_anova(design, "g")
        result = tukey_hsd(design, model, ["g"])
        assert len(result.comparisons) == 1

    def test_format_table(self):
        design = design_with_means({"a": 0.0, "b": 5.0})
        result = tukey_hsd(design, one_way_anova(design, "g"), ["g"])
        text = result.format_table()
        assert "a" in text and "b" in text and "-" in text
