"""Tests for record compression during run generation (Section 3.7.5)."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runs.compression import (
    CompressedReplacementSelection,
    SubstringCodec,
)

CITIES = ["Barcelona", "Tarragona", "Girona", "Lleida", "Manresa"]


def payload_stream(n, seed=1):
    rng = random.Random(seed)
    return [
        f"customer-{rng.choice(CITIES)}-{rng.randint(1, 999)}"
        for _ in range(n)
    ]


def record_stream(n, seed=2):
    rng = random.Random(seed)
    payloads = payload_stream(n, seed + 1)
    return [(rng.randrange(10**6), p) for p in payloads]


@pytest.fixture(scope="module")
def codec():
    return SubstringCodec(payload_stream(300), max_codes=32)


class TestCodec:
    def test_roundtrip(self, codec):
        for payload in payload_stream(100, seed=9):
            assert codec.decode(codec.encode(payload)) == payload

    def test_compresses_repetitive_text(self, codec):
        assert codec.ratio(payload_stream(200, seed=5)) < 0.8

    def test_unseen_text_passes_through(self, codec):
        unique = "zzz-qqq-xxx-123"
        assert codec.decode(codec.encode(unique)) == unique

    def test_codebook_longest_first(self, codec):
        lengths = [len(s) for s in codec.codebook]
        assert lengths == sorted(lengths, reverse=True)

    def test_escape_byte_rejected(self, codec):
        with pytest.raises(ValueError):
            codec.encode("bad\x00payload")
        with pytest.raises(ValueError):
            SubstringCodec(["bad\x00sample"])

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SubstringCodec([], max_codes=0)
        with pytest.raises(ValueError):
            SubstringCodec([], min_length=1)

    def test_empty_sample_identity(self):
        codec = SubstringCodec([])
        assert codec.encode("anything") == "anything"
        assert codec.ratio(["abc"]) == 1.0


class TestCompressedRs:
    def test_sorted_runs_complete(self, codec):
        records = record_stream(3_000)
        generator = CompressedReplacementSelection(4_000, codec)
        runs = list(generator.generate_runs(records))
        for run in runs:
            keys = [k for k, _ in run]
            assert keys == sorted(keys)
        assert sorted(itertools.chain(*runs)) == sorted(records)

    def test_payloads_survive_roundtrip(self, codec):
        records = record_stream(500)
        generator = CompressedReplacementSelection(2_000, codec)
        out = list(itertools.chain(*generator.generate_runs(records)))
        assert sorted(out) == sorted(records)

    def test_compression_lengthens_runs(self, codec):
        """The paper's claim: compressed records => fewer runs."""
        records = record_stream(5_000)
        plain = CompressedReplacementSelection(4_000, codec=None)
        compressed = CompressedReplacementSelection(4_000, codec)
        plain_runs = len(list(plain.generate_runs(records)))
        compressed_runs = len(list(compressed.generate_runs(records)))
        assert compressed_runs < plain_runs

    def test_byte_budget_respected_indirectly(self, codec):
        # A tiny budget must still sort correctly, one record at a time.
        records = record_stream(50)
        generator = CompressedReplacementSelection(40, codec)
        runs = list(generator.generate_runs(records))
        assert sorted(itertools.chain(*runs)) == sorted(records)
        for run in runs:
            keys = [k for k, _ in run]
            assert keys == sorted(keys)

    def test_stats_counted(self, codec):
        generator = CompressedReplacementSelection(2_000, codec)
        list(generator.generate_runs(record_stream(1_000)))
        assert generator.stats.records_in == 1_000
        assert generator.stats.runs_out >= 1


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 10_000), st.text(alphabet="abcdef-", max_size=12)),
        max_size=150,
    ),
    st.integers(30, 400),
)
def test_compressed_rs_correct_for_any_input(records, budget):
    codec = SubstringCodec([p for _, p in records[:50]], max_codes=16)
    generator = CompressedReplacementSelection(budget, codec)
    runs = list(generator.generate_runs(records))
    for run in runs:
        keys = [k for k, _ in run]
        assert keys == sorted(keys)
    assert sorted(itertools.chain(*runs)) == sorted(records)


class TestCostModelReconciliation:
    """The simulator's dictionary coder vs the real spill codecs.

    The cost model's claims only transfer to the real-file backends if
    both worlds agree on the *ordering* of codec effectiveness on the
    same data: none saves nothing, zlib beats the dictionary coder,
    lzma beats zlib (DESIGN.md §15 — which is exactly why the planner
    reserves lzma for explicit opt-in: better ratio, worse CPU).
    Ratios here are compressed/original, so smaller is stronger.
    """

    def measured(self, payloads):
        from repro.engine.spill_codec import compress_body

        body = "".join(p + "\n" for p in payloads).encode()
        return {
            "none": 1.0,
            "zlib": len(compress_body("zlib", body, ())) / len(body),
            "lzma": len(compress_body("lzma", body, ())) / len(body),
        }

    def test_real_codec_ordering_none_zlib_lzma(self):
        measured = self.measured(payload_stream(4_000, seed=77))
        assert measured["lzma"] < measured["zlib"] < measured["none"]

    def test_model_ratio_brackets_reality(self):
        payloads = payload_stream(4_000, seed=78)
        measured = self.measured(payloads)
        model = SubstringCodec(payloads[:500], max_codes=64).ratio(payloads)
        # The dictionary coder must model a real-but-weaker compressor:
        # it saves bytes, but never claims savings the general-purpose
        # codecs cannot deliver — otherwise simulated memory-stretch
        # conclusions would overstate what the spill layer achieves.
        assert measured["zlib"] <= model < measured["none"]
