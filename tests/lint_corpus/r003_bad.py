# repro-lint-corpus: src/repro/engine/resilience.py
# expect: R003:8
# expect: R003:12
"""Known-bad §11 order: journal-before-fsync, delete-before-journal."""


def journal_without_fsync(journal, out_path):
    journal.append({"type": "merge", "file": out_path})


def deletes_before_journal(journal, out_path, inputs, fd):
    os.remove(inputs[0])
    os.fsync(fd)
    journal.append({"type": "merge", "file": out_path})
