# repro-lint-corpus: src/repro/report/r001_example_bad.py
# expect: R001:9
# expect: R001:15
# expect: R001:19
"""Known-bad handle custody: every accepted arrangement is missing."""


def leaky_reader(path):
    handle = open_text(path, "r")
    first = handle.readline()
    return first


def discarded(path):
    open(path, "r")


def unflushed(path, fmt, handle):
    writer = BlockWriter(handle, fmt)
    writer.write(["1"])
