# repro-lint-corpus: src/repro/merge/kway.py
# expect: none
"""Known-good: the merge loop compares raw bytes; per-block work is
waived with its reason."""


def merge_step(fmt, heap, out, tails, block):
    while heap:
        out.append(heap.pop())
    # repro: lint-waive R007 per-block forecast tail, not per-record
    tails.append(fmt.key(block[-1]))
