# repro-lint-corpus: src/repro/engine/resilience.py
# expect: none
"""Known-good publish: write → fsync → rename into place."""


def publish(handle, tmp, path):
    handle.flush()
    os.fsync(handle.fileno())
    os.replace(tmp, path)


def marker_publish(tmp, path, payload):
    write_marker(tmp, payload)
    os.replace(tmp, path)
