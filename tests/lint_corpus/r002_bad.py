# repro-lint-corpus: src/repro/sort/r002_example_bad.py
# expect: R002:7
"""Known-bad: builtin open() on the spill path dodges the fault seam."""


def spill_partition(path, rows):
    with open(path, "w", encoding="utf-8") as handle:
        handle.writelines(rows)
