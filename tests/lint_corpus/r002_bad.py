# repro-lint-corpus: src/repro/sort/r002_example_bad.py
# expect: R002:7
# expect: R002:12
# expect: R002:17
"""Known-bad: builtin open() and codec file APIs dodge the fault seam."""
def spill_partition(path, rows):
    with open(path, "w", encoding="utf-8") as handle:
        handle.writelines(rows)


def spill_compressed(path, rows):
    with lzma.open(path, "wt") as handle:
        handle.writelines(rows)


def spill_gzipped(path, rows):
    handle = GzipFile(path, "wb")
    try:
        handle.write(b"".join(row.encode() for row in rows))
    finally:
        handle.close()
