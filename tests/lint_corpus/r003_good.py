# repro-lint-corpus: src/repro/engine/resilience.py
# expect: none
"""Known-good §11 order: write → fsync → journal append → delete inputs."""


def merge_group(journal, out_path, inputs, fd):
    os.fsync(fd)
    journal.append({"type": "merge", "file": out_path})
    for path in inputs:
        os.remove(path)


def metadata_only(journal):
    journal.append({"type": "runs_done", "count": 3})
