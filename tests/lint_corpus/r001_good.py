# repro-lint-corpus: src/repro/report/r001_example_good.py
# expect: none
"""Every accepted custody arrangement for handles and BlockWriters."""


def context_managed(path):
    with open_text(path, "r") as handle:
        return handle.readline()


def finally_closed(path):
    handle = open_text(path, "r")
    try:
        return handle.readline()
    finally:
        handle.close()


def ownership_transferred(path):
    handle = open(path, "r", encoding="utf-8")
    return handle


def flushed_writer(handle, fmt):
    writer = BlockWriter(handle, fmt)
    writer.write(["1"])
    writer.flush()


class JournalReader:
    def open_journal(self, path):
        self.handle = open_text(path, "r")

    def close(self):
        self.handle.close()
