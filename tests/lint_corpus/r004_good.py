# repro-lint-corpus: src/repro/sort/r004_example_good.py
# expect: none
"""Known-good pairing: finally-guarded release; acquisition helpers."""


def paired(broker, amount):
    grant = broker.request(amount)
    try:
        sort_with(grant)
    finally:
        broker.release(grant)


def released_on_error(broker, amount):
    grant = broker.request(amount)
    try:
        sort_with(grant)
    except BaseException:
        broker.release(grant)
        raise
    broker.release(grant)


def acquire(broker, amount):
    return broker.request_or_enqueue(amount)


def acquire_named(broker, amount):
    grant = broker.try_allocate(amount)
    return grant
