# repro-lint-corpus: src/repro/sort/r000_waiver_bad.py
# expect: R000:8
# expect: R002:9
"""A reasonless waiver is itself a finding and suppresses nothing."""


def spill(path):
    # repro: lint-waive R002
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("x\n")
