# repro-lint-corpus: src/repro/engine/r005_example_bad.py
# expect: R005:6
"""Known-bad: unpickling replays __init__ with the wrong arity."""


class TwoArgError(Exception):
    def __init__(self, path, line):
        super().__init__(f"{path}:{line}")
        self.path = path
        self.line = line
