# repro-lint-corpus: src/repro/sort/r002_example_good.py
# expect: none
"""Known-good: spill I/O through the seam; codecs block-at-a-time."""


def spill_partition(path, rows):
    with open_text(path, "w") as handle:
        handle.writelines(rows)


def spill_compressed(path, rows, fmt):
    # Block-at-a-time compression stays inside the RBLC framing: the
    # codec sees in-memory block bodies, never the file handle.
    with open_run(path, "w", fmt, codec="zlib") as handle:
        writer = BlockWriter(handle, fmt, 4096, codec="zlib")
        writer.write_all(rows)
        writer.flush()
