# repro-lint-corpus: src/repro/sort/r002_example_good.py
# expect: none
"""Known-good: spill I/O goes through the block_io.open_text seam."""


def spill_partition(path, rows):
    with open_text(path, "w") as handle:
        handle.writelines(rows)
