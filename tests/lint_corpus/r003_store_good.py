# repro-lint-corpus: src/repro/store/store.py
# expect: none
"""Known-good store order: the table is written with a literal
``fsync=True`` before the MANIFEST append that makes it live, and
superseded WALs are deleted only after; an annihilating compaction
appends no ``file`` key and needs no fsync."""


def flush(manifest, table_path, wal_path, entries):
    write_table(table_path, entries, fsync=True)
    manifest.append(
        {"type": "flush", "file": table_path, "wal_floor": 2}
    )
    os.remove(wal_path)


def annihilating_compact(manifest, inputs):
    manifest.append({"type": "compact", "removes": inputs})
