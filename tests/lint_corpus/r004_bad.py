# repro-lint-corpus: src/repro/sort/r004_example_bad.py
# expect: R004:8
# expect: R004:13
"""Known-bad broker pairing: leaked grant and happy-path-only release."""


def never_released(broker, amount):
    grant = broker.request(amount)
    sort_with(grant)


def happy_path_release(broker, amount):
    grant = broker.request_or_enqueue(amount)
    sort_with(grant)
    broker.release(grant)
