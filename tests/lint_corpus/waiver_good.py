# repro-lint-corpus: src/repro/sort/waiver_good.py
# expect: none
"""A reasoned waiver suppresses the finding on the next line."""


def spill(path):
    # repro: lint-waive R002 marker metadata deliberately outside the fault seam
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("x\n")
