# repro-lint-corpus: src/repro/core/r006_example_bad.py
# expect: R006:9
# expect: R006:13
# expect: R006:17
# expect: R006:21
# expect: R006:25
"""Known-bad: ambient entropy and wall clock in the sort core."""

from random import randint


def shuffled(blocks):
    random.shuffle(blocks)


def self_seeded():
    return random.Random()


def stamped():
    return time.time()


def aliased(clock):
    return clock.time_ns()
