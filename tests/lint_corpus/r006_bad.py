# repro-lint-corpus: src/repro/core/r006_example_bad.py
# expect: R006:8
# expect: R006:12
# expect: R006:16
# expect: R006:20
"""Known-bad: ambient entropy and wall clock in the sort core."""

from random import randint


def shuffled(blocks):
    random.shuffle(blocks)


def self_seeded():
    return random.Random()


def stamped():
    return time.time()
