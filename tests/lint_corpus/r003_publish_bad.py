# repro-lint-corpus: src/repro/engine/resilience.py
# expect: R003:7
"""Known-bad publish: rename with no fsync — §11 write→fsync→rename."""


def publish_without_fsync(tmp, path):
    os.replace(tmp, path)
