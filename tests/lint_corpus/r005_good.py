# repro-lint-corpus: src/repro/engine/r005_example_good.py
# expect: none
"""Known-good: exception constructors replay cleanly from args."""


class SimpleError(Exception):
    pass


class DetailedError(Exception):
    def __init__(self, path, line):
        super().__init__(path, line)
        self.path = path
        self.line = line

    def __str__(self):
        return "{}:{}".format(self.path, self.line)
