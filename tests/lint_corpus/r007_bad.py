# repro-lint-corpus: src/repro/merge/kway.py
# expect: R007:9
# expect: R007:10
"""Known-bad: per-record decoding inside the k-way merge loop."""


def merge_step(fmt, heap, out):
    while heap:
        record = fmt.decode(heap.pop())
        out.append(fmt.key(record))
