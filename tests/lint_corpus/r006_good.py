# repro-lint-corpus: src/repro/core/r006_example_good.py
# expect: none
"""Known-good: injected seed, monotonic timing only."""

import random
import time


def shuffled(blocks, seed):
    rng = random.Random(seed)
    rng.shuffle(blocks)
    return blocks


def timed(work):
    start = time.perf_counter()
    work()
    return time.perf_counter() - start


def uptime(loop, started_at):
    # The asyncio event-loop clock is monotonic — sanctioned for the
    # resident service's uptime/latency stamps.
    return loop.time() - started_at
