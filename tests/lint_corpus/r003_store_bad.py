# repro-lint-corpus: src/repro/store/store.py
# expect: R003:11
# expect: R003:15
"""Known-bad store order: the MANIFEST claims an un-fsynced table
(``fsync=False`` is not a durability event), and a WAL is deleted
before the append that supersedes it."""


def flush_without_fsync(manifest, table_path, entries):
    write_table(table_path, entries, fsync=False)
    manifest.append({"type": "flush", "file": table_path})


def wal_deleted_before_manifest(manifest, table_path, wal_path, entries):
    os.remove(wal_path)
    write_table(table_path, entries, fsync=True)
    manifest.append({"type": "flush", "file": table_path})
