"""Tests for batched replacement selection (Section 3.7.1)."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runs.batched import BatchedReplacementSelection
from repro.runs.replacement_selection import ReplacementSelection
from repro.workloads.generators import random_input, sorted_input


class TestBatched:
    def test_empty(self):
        brs = BatchedReplacementSelection(100, minirun_length=10)
        assert list(brs.generate_runs([])) == []

    def test_invalid_minirun(self):
        with pytest.raises(ValueError):
            BatchedReplacementSelection(100, minirun_length=0)

    def test_minirun_capped_at_memory(self):
        brs = BatchedReplacementSelection(8, minirun_length=1000)
        assert brs.minirun_length == 8

    def test_sorted_input_single_run(self):
        brs = BatchedReplacementSelection(100, minirun_length=10)
        runs = list(brs.generate_runs(sorted_input(2_000)))
        assert len(runs) == 1

    def test_runs_sorted_and_complete(self):
        data = list(random_input(5_000, seed=2))
        brs = BatchedReplacementSelection(200, minirun_length=20)
        runs = list(brs.generate_runs(data))
        for run in runs:
            assert run == sorted(run)
        assert sorted(itertools.chain(*runs)) == sorted(data)

    def test_heap_is_smaller_than_plain_rs(self):
        """The point of the variant: the hot heap shrinks dramatically.

        (Larson's win is cache locality; with our analytic op counting
        the minirun sorts offset the cheaper heap traversals, so we
        assert the structural property plus comparable total cost.)
        """
        brs = BatchedReplacementSelection(1_000, minirun_length=50)
        assert brs.num_miniruns == 20  # heap holds 20 entries, not 1000
        data = list(random_input(10_000, seed=4))
        rs = ReplacementSelection(1_000)
        list(rs.generate_runs(data))
        list(brs.generate_runs(data))
        assert brs.stats.cpu_ops < 2 * rs.stats.cpu_ops

    def test_runs_not_much_shorter_than_rs(self):
        data = list(random_input(10_000, seed=4))
        rs_runs = ReplacementSelection(500).count_runs(data)
        brs_runs = BatchedReplacementSelection(500, minirun_length=25).count_runs(data)
        assert brs_runs <= 2 * rs_runs


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(-1000, 1000), max_size=300),
    st.integers(2, 50),
    st.integers(1, 20),
)
def test_batched_correctness(data, memory, minirun):
    brs = BatchedReplacementSelection(memory, minirun_length=minirun)
    runs = list(brs.generate_runs(data))
    for run in runs:
        assert run == sorted(run)
    assert sorted(itertools.chain(*runs)) == sorted(data)
