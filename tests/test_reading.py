"""Tests for the merge-phase reading strategies (Section 3.7.2)."""

import pytest

from repro.iosim.disk import DiskGeometry
from repro.merge.reading import STRATEGIES, ReadingSimulator
from repro.workloads.generators import random_input


def make_runs(count=10, records=2_000):
    return [sorted(random_input(records, seed=i)) for i in range(count)]


@pytest.fixture(scope="module")
def simulator():
    return ReadingSimulator(make_runs(), memory_records=4_096)


class TestBasics:
    def test_unknown_strategy(self, simulator):
        with pytest.raises(ValueError, match="unknown strategy"):
            simulator.simulate("psychic")

    def test_empty_runs_rejected(self):
        with pytest.raises(ValueError):
            ReadingSimulator([])

    def test_reports_have_positive_times(self, simulator):
        for strategy in STRATEGIES:
            report = simulator.simulate(strategy)
            assert report.total_time > 0
            assert report.io_time > 0
            assert report.block_reads > 0

    def test_total_at_least_io_or_cpu(self, simulator):
        n = sum(len(r) for r in simulator.runs)
        cpu = n * simulator.cpu_per_record
        for strategy in STRATEGIES:
            report = simulator.simulate(strategy)
            assert report.total_time >= cpu - 1e-9
            assert report.total_time >= report.io_time - 1e-9

    def test_every_block_eventually_read(self, simulator):
        naive = simulator.simulate("naive")
        total_blocks = sum(
            -(-len(r) // max(1, simulator.memory_records // len(simulator.runs)))
            for r in simulator.runs
        )
        assert naive.block_reads == total_blocks


class TestStrategyOrdering:
    def test_naive_stalls_for_every_block(self, simulator):
        naive = simulator.simulate("naive")
        # With no read-ahead the consumer pays the whole I/O bill.
        assert naive.stall_time == pytest.approx(naive.io_time, rel=0.05)

    def test_planning_beats_naive(self, simulator):
        naive = simulator.simulate("naive")
        planning = simulator.simulate("planning")
        assert planning.total_time < naive.total_time

    def test_planning_has_lowest_stall(self, simulator):
        reports = simulator.compare()
        assert reports["planning"].stall_time == min(
            r.stall_time for r in reports.values()
        )

    def test_forecasting_not_worse_than_naive(self, simulator):
        reports = simulator.compare()
        assert (
            reports["forecasting"].total_time
            <= reports["naive"].total_time * 1.05
        )

    def test_double_buffering_doubles_refills(self, simulator):
        reports = simulator.compare()
        assert reports["double_buffering"].block_reads >= int(
            1.8 * reports["naive"].block_reads
        )

    def test_planning_amortises_seeks(self, simulator):
        reports = simulator.compare()
        planning = reports["planning"]
        # Fewer seeks per block read than the naive scan despite having
        # smaller buffers.
        assert (
            planning.seeks / planning.block_reads
            < reports["naive"].seeks / reports["naive"].block_reads
        )

    def test_cpu_bound_regime_hides_io(self):
        """With a slow CPU, read-ahead hides essentially all I/O."""
        sim = ReadingSimulator(
            make_runs(), memory_records=4_096, cpu_per_record=3e-4
        )
        reports = sim.compare()
        assert reports["double_buffering"].stall_time < 0.3 * (
            reports["naive"].stall_time
        )


class TestGeometry:
    def test_faster_disk_shrinks_io(self):
        fast = DiskGeometry(seek_time=1e-3, rotational_delay=5e-4)
        a = ReadingSimulator(make_runs(), geometry=fast).simulate("naive")
        b = ReadingSimulator(make_runs()).simulate("naive")
        assert a.io_time < b.io_time
