"""Tests for heapsort (Section 3.2)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.heaps.heapsort import heapsort, heapsort_inplace


class TestHeapsort:
    def test_empty(self):
        assert heapsort([]) == []

    def test_single(self):
        assert heapsort([42]) == [42]

    def test_basic(self):
        assert heapsort([3, 1, 2]) == [1, 2, 3]

    def test_already_sorted(self):
        assert heapsort(range(10)) == list(range(10))

    def test_reverse_sorted(self):
        assert heapsort(range(9, -1, -1)) == list(range(10))

    def test_duplicates(self):
        assert heapsort([2, 2, 1]) == [1, 2, 2]

    def test_with_key(self):
        records = [("b", 2), ("a", 3), ("c", 1)]
        assert heapsort(records, key=lambda r: r[1]) == [
            ("c", 1),
            ("b", 2),
            ("a", 3),
        ]

    def test_key_sort_is_stable_under_ties(self):
        records = [("first", 1), ("second", 1)]
        assert heapsort(records, key=lambda r: r[1]) == records

    def test_accepts_iterator(self):
        assert heapsort(iter([3, 1])) == [1, 3]


class TestHeapsortInplace:
    def test_sorts_and_returns_same_list(self):
        values = [5, 2, 9]
        result = heapsort_inplace(values)
        assert result is values
        assert values == [2, 5, 9]

    def test_empty(self):
        assert heapsort_inplace([]) == []


@settings(max_examples=200)
@given(st.lists(st.integers()))
def test_heapsort_equals_sorted(values):
    assert heapsort(values) == sorted(values)


@settings(max_examples=200)
@given(st.lists(st.floats(allow_nan=False)))
def test_heapsort_inplace_equals_sorted(values):
    assert heapsort_inplace(list(values)) == sorted(values)
