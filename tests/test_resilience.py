"""Tests for the crash-safety layer (DESIGN.md §11).

Covers the building blocks — per-block checksums, the append-only
:class:`SortJournal`, completion markers — and the end-to-end contract:
a sort killed at an arbitrary point, rerun with ``resume``, produces
output byte-identical (SHA-256) to the uninterrupted run, and a
corrupted surviving artifact is detected and regenerated rather than
trusted.
"""

import json
import os

import pytest

from _helpers import sha256_file
from repro.core.records import INT, STR
from repro.engine.block_io import (
    BlockWriter,
    open_text,
    read_blocks,
    write_block_file,
)
from repro.engine.errors import CorruptBlockError, JournalError, SortError
from repro.engine.planner import SortEngine
from repro.engine.resilience import (
    JOURNAL_NAME,
    ResumableSpillSort,
    SortJournal,
    artifact_valid,
    file_crc32,
    read_marker,
    write_marker,
)
from repro.core.config import GeneratorSpec
from repro.testing.faults import FaultInjected, FaultPlan, activate


# ---------------------------------------------------------------------------
# per-block checksums
# ---------------------------------------------------------------------------


class TestBlockChecksums:
    def write(self, path, records, fmt=INT, block=4, checksum=True):
        return write_block_file(str(path), records, fmt, block, checksum=checksum)

    def read(self, path, fmt=INT, block=4):
        with open_text(str(path)) as handle:
            return list(read_blocks(handle, fmt, block, checksum=True))

    def test_round_trip(self, tmp_path):
        path = tmp_path / "blk.txt"
        count, crc = self.write(path, list(range(10)))
        assert count == 10
        assert crc == file_crc32(str(path))
        assert self.read(path) == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]

    def test_round_trip_str(self, tmp_path):
        path = tmp_path / "blk.txt"
        words = ["delta", "alpha", "", "  spaced  ", "zed"]
        self.write(path, words, fmt=STR, block=2)
        assert [r for b in self.read(path, fmt=STR) for r in b] == words

    def test_bit_flip_detected_with_location(self, tmp_path):
        path = tmp_path / "blk.txt"
        self.write(path, list(range(100, 120)), block=8)
        raw = path.read_bytes()
        # Corrupt a digit inside the *second* block's payload.
        second = raw.index(b"108")
        path.write_bytes(raw[:second] + b"903" + raw[second + 3 :])
        with pytest.raises(CorruptBlockError) as err:
            self.read(path, block=8)
        assert err.value.path == str(path)
        assert err.value.block_index == 1
        assert err.value.offset > 0
        assert str(path) in str(err.value)
        assert "checksum mismatch" in str(err.value)

    def test_truncated_block_detected(self, tmp_path):
        path = tmp_path / "blk.txt"
        self.write(path, list(range(8)), block=4)
        lines = path.read_text().splitlines(keepends=True)
        path.write_text("".join(lines[:-2]))  # tear the last block
        with pytest.raises(CorruptBlockError) as err:
            self.read(path)
        assert "truncated" in str(err.value)

    def test_missing_header_detected(self, tmp_path):
        path = tmp_path / "blk.txt"
        path.write_text("1\n2\n3\n")  # plain file, no headers
        with pytest.raises(CorruptBlockError) as err:
            self.read(path)
        assert err.value.block_index == 0
        assert "header" in str(err.value)

    def test_unchecksummed_reader_still_works(self, tmp_path):
        path = tmp_path / "blk.txt"
        self.write(path, list(range(6)), checksum=False)
        with open_text(str(path)) as handle:
            blocks = list(read_blocks(handle, INT, 4))
        assert [r for b in blocks for r in b] == list(range(6))

    def test_writer_tracks_file_crc(self, tmp_path):
        path = tmp_path / "crc.txt"
        with open_text(str(path), "w") as handle:
            writer = BlockWriter(handle, INT, 3, track_crc=True)
            writer.write_all(range(10))
            writer.flush()
        assert writer.file_crc == file_crc32(str(path))


# ---------------------------------------------------------------------------
# journal and markers
# ---------------------------------------------------------------------------


FINGERPRINT = {"mode": "test", "memory": 8}


class TestSortJournal:
    def test_append_and_resume(self, tmp_path):
        work = str(tmp_path)
        with SortJournal.open_dir(work, FINGERPRINT, resume=False) as journal:
            journal.append({"type": "run", "id": 0, "file": "r0",
                            "records": 3, "crc32": 1})
        with SortJournal.open_dir(work, FINGERPRINT, resume=True) as journal:
            assert [e["type"] for e in journal.entries] == ["meta", "run"]

    def test_fingerprint_mismatch_wipes_directory(self, tmp_path):
        work = str(tmp_path)
        SortJournal.open_dir(work, FINGERPRINT, resume=False).close()
        (tmp_path / "stale-run.txt").write_text("1\n")
        journal = SortJournal.open_dir(
            work, {"mode": "test", "memory": 9}, resume=True
        )
        journal.close()
        assert not (tmp_path / "stale-run.txt").exists()
        assert [e["type"] for e in journal.entries] == ["meta"]

    def test_torn_trailing_line_tolerated(self, tmp_path):
        work = str(tmp_path)
        with SortJournal.open_dir(work, FINGERPRINT, resume=False) as journal:
            journal.append({"type": "run", "id": 0, "file": "r0",
                            "records": 3, "crc32": 1})
        with open(tmp_path / JOURNAL_NAME, "a", encoding="utf-8") as handle:
            handle.write('{"type": "run", "id": 1, "fi')  # crash mid-append
        with SortJournal.open_dir(work, FINGERPRINT, resume=True) as journal:
            assert len(journal.entries) == 2  # torn line dropped

    def test_append_after_torn_line_repairs_the_tail(self, tmp_path):
        # Without tail repair, the first append of a resumed attempt
        # fuses with the torn line into one unparseable mid-file entry,
        # and the *next* resume rejects the whole journal.
        work = str(tmp_path)
        with SortJournal.open_dir(work, FINGERPRINT, resume=False) as journal:
            journal.append({"type": "run", "id": 0, "file": "r0",
                            "records": 3, "crc32": 1})
        with open(tmp_path / JOURNAL_NAME, "a", encoding="utf-8") as handle:
            handle.write('{"type": "run", "id": 1, "fi')  # crash mid-append
        with SortJournal.open_dir(work, FINGERPRINT, resume=True) as journal:
            journal.append({"type": "run", "id": 1, "file": "r1",
                            "records": 4, "crc32": 2})
        with SortJournal.open_dir(work, FINGERPRINT, resume=True) as journal:
            assert [e["type"] for e in journal.entries] == [
                "meta", "run", "run",
            ]
            assert journal.runs()[1]["records"] == 4

    def test_mid_file_corruption_rejected(self, tmp_path):
        work = str(tmp_path)
        with SortJournal.open_dir(work, FINGERPRINT, resume=False) as journal:
            journal.append({"type": "runs_done", "runs": 0, "records": 0})
        text = (tmp_path / JOURNAL_NAME).read_text().splitlines()
        text[0] = "garbage{{{"
        (tmp_path / JOURNAL_NAME).write_text("\n".join(text) + "\n")
        with pytest.raises(JournalError):
            SortJournal._load(str(tmp_path / JOURNAL_NAME))
        # open_dir recovers by starting fresh instead of crashing.
        journal = SortJournal.open_dir(work, FINGERPRINT, resume=True)
        journal.close()
        assert [e["type"] for e in journal.entries] == ["meta"]

    def test_refuses_to_wipe_foreign_directory(self, tmp_path):
        (tmp_path / "precious.txt").write_text("user data\n")
        with pytest.raises(JournalError):
            SortJournal.open_dir(str(tmp_path), FINGERPRINT, resume=False)
        assert (tmp_path / "precious.txt").read_text() == "user data\n"

    def test_valid_runs_requires_surviving_file(self, tmp_path):
        work = str(tmp_path)
        path = tmp_path / "run-000000.txt"
        with SortJournal.open_dir(work, FINGERPRINT, resume=False) as journal:
            # Written after open_dir: a fresh journal wipes the directory.
            _, crc = write_block_file(str(path), [1, 2, 3], INT, 4)
            journal.append({"type": "run", "id": 0, "file": path.name,
                            "records": 3, "crc32": crc})
            journal.append({"type": "run", "id": 1, "file": "gone.txt",
                            "records": 3, "crc32": 0})
            assert set(journal.valid_runs(work)) == {0}
            path.write_text("9\n9\n9\n")  # corrupt the survivor
            assert journal.valid_runs(work) == {}


class TestMarkers:
    def test_round_trip_and_validation(self, tmp_path):
        data = tmp_path / "shard.sorted"
        _, crc = write_block_file(str(data), [1, 2], INT, 4)
        marker = str(data) + ".ok"
        write_marker(marker, {"records": 2, "crc32": crc})
        assert read_marker(marker) == {"records": 2, "crc32": crc}
        assert artifact_valid(str(data), 2, crc)
        data.write_text("tampered\n")
        assert not artifact_valid(str(data), 2, crc)

    def test_unreadable_marker_is_none(self, tmp_path):
        path = tmp_path / "m.ok"
        assert read_marker(str(path)) is None
        path.write_text("{not json")
        assert read_marker(str(path)) is None
        path.write_text(json.dumps([1, 2]))
        assert read_marker(str(path)) is None


# ---------------------------------------------------------------------------
# resumable serial sort
# ---------------------------------------------------------------------------


def make_sorter(work, **kwargs):
    defaults = dict(
        memory=16, work_dir=str(work), fan_in=3, buffer_records=8,
        checksum=True,
    )
    defaults.update(kwargs)
    return ResumableSpillSort(**defaults)


DATA = [((i * 7919) % 400) - 200 for i in range(300)]


class TestResumableSpillSort:
    def test_sorts_and_cleans_up_on_success(self, tmp_path):
        work = tmp_path / "wd"
        sorter = make_sorter(work)
        assert list(sorter.sort(iter(DATA))) == sorted(DATA)
        assert not work.exists()
        assert sorter.report.algorithm == "CKPT"
        assert sorter.report.records == len(DATA)
        assert sorter.merge_passes >= 2  # 19 runs through fan-in 3

    def test_failure_keeps_work_dir_and_resume_finishes(self, tmp_path):
        work = tmp_path / "wd"
        plan = FaultPlan(op="write", nth=10, kind="raise", path_substring="run-")
        with activate(plan):
            with pytest.raises(FaultInjected):
                list(make_sorter(work).sort(iter(DATA)))
        assert work.is_dir()
        journaled = [p for p in os.listdir(work) if p.startswith("run-")]
        assert journaled  # completed runs survived
        resumed = make_sorter(work, resume=True)
        assert list(resumed.sort(iter(DATA))) == sorted(DATA)
        assert resumed.runs_reused >= 1
        assert not work.exists()

    def test_resume_skips_input_when_generation_finished(self, tmp_path):
        work = tmp_path / "wd"
        plan = FaultPlan(op="write", nth=1, kind="short_write",
                         path_substring="merge-")
        with activate(plan):
            with pytest.raises(FaultInjected):
                list(make_sorter(work).sort(iter(DATA)))
        resumed = make_sorter(work, resume=True)

        def explode():
            raise AssertionError("input must not be read on mid-merge resume")
            yield  # pragma: no cover

        assert list(resumed.sort(explode())) == sorted(DATA)
        assert resumed.runs_reused == 19  # ceil(300 / 16)

    def test_runs_consumed_by_surviving_merges_not_regenerated(self, tmp_path):
        # A crash during the *final* merge leaves most generation runs
        # deleted (consumed by journaled intermediate merges).  Resume
        # must treat them as done — transitively through merge levels —
        # not re-sort their chunks only to throw the files away.
        work = tmp_path / "wd"
        # 300 records / memory 16 -> 19 runs -> passes 19 -> 7 -> 3;
        # merge-000007 is only ever read by the final streamed merge.
        plan = FaultPlan(op="read", nth=1, kind="raise",
                         path_substring="merge-000007")
        with activate(plan):
            with pytest.raises(FaultInjected):
                list(make_sorter(work).sort(iter(DATA)))
        resumed = make_sorter(work, resume=True)

        def explode():
            raise AssertionError("input must not be read — all runs are "
                                 "covered by surviving merges")
            yield  # pragma: no cover

        assert list(resumed.sort(explode())) == sorted(DATA)
        assert resumed.runs_reused == 19
        assert resumed.merges_reused == 8  # 6 first-pass + 2 second-pass

    def test_corrupt_surviving_run_is_regenerated(self, tmp_path):
        work = tmp_path / "wd"
        # Each 16-record run is 4 writes (2 headers + 2 payload blocks);
        # write #30 dies in run 7, leaving runs 0-6 journaled.
        plan = FaultPlan(op="write", nth=30, kind="raise", path_substring="run-")
        with activate(plan):
            with pytest.raises(FaultInjected):
                list(make_sorter(work).sort(iter(DATA)))
        victim = os.path.join(work, "run-000002.txt")
        with open(victim, "r+", encoding="utf-8") as handle:
            handle.seek(0)
            handle.write("X")
        resumed = make_sorter(work, resume=True)
        assert list(resumed.sort(iter(DATA))) == sorted(DATA)

    def test_incompatible_journal_starts_fresh(self, tmp_path):
        work = tmp_path / "wd"
        plan = FaultPlan(op="write", nth=5, kind="raise", path_substring="run-")
        with activate(plan):
            with pytest.raises(FaultInjected):
                list(make_sorter(work).sort(iter(DATA)))
        resumed = make_sorter(work, resume=True, memory=32)  # changed budget
        assert list(resumed.sort(iter(DATA))) == sorted(DATA)
        assert resumed.runs_reused == 0

    def test_abandoned_stream_keeps_work_dir(self, tmp_path):
        work = tmp_path / "wd"
        stream = make_sorter(work).sort(iter(DATA))
        assert next(stream) == min(DATA)
        stream.close()
        assert work.is_dir()

    def test_validates_parameters(self, tmp_path):
        with pytest.raises(ValueError):
            make_sorter(tmp_path / "wd", memory=0)
        with pytest.raises(ValueError):
            make_sorter(tmp_path / "wd", fan_in=1)
        with pytest.raises(ValueError):
            make_sorter(tmp_path / "wd", reading="bogus")


# ---------------------------------------------------------------------------
# engine + CLI integration
# ---------------------------------------------------------------------------


class TestEngineResilience:
    def test_resume_requires_work_dir(self):
        engine = SortEngine(GeneratorSpec(algorithm="rs", memory=16))
        with pytest.raises(ValueError):
            next(engine.sort(iter([3, 1, 2]), resume=True))

    def test_durable_engine_sort_round_trip(self, tmp_path):
        engine = SortEngine(
            GeneratorSpec(algorithm="rs", memory=16),
            work_dir=str(tmp_path / "wd"),
            checksum=True,
        )
        assert list(engine.sort(iter(DATA))) == sorted(DATA)
        assert engine.plan.mode == "spill"
        assert engine.report.algorithm == "CKPT"
        assert not (tmp_path / "wd").exists()

    def test_tiny_durable_input_sorts_in_memory(self, tmp_path):
        engine = SortEngine(
            GeneratorSpec(algorithm="rs", memory=64),
            work_dir=str(tmp_path / "wd"),
        )
        assert list(engine.sort(iter([3, 1, 2]), resume=True)) == [1, 2, 3]
        assert engine.plan.mode == "in_memory"


class TestCliResilience:
    def write_input(self, tmp_path):
        path = tmp_path / "in.txt"
        path.write_text("".join(f"{v}\n" for v in DATA))
        return path

    def test_resume_requires_real_input(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["sort", "--resume", "-", "-o", "out.txt"])

    def test_resume_requires_output_or_work_dir(self, tmp_path):
        from repro.cli import main

        path = self.write_input(tmp_path)
        with pytest.raises(SystemExit):
            main(["sort", "--resume", str(path)])

    def test_faulted_cli_sort_resumes_byte_identical(self, tmp_path):
        from repro.cli import main

        path = self.write_input(tmp_path)
        ref = tmp_path / "ref.txt"
        assert main(["sort", "--memory", "16", str(path), "-o", str(ref)]) == 0
        out = tmp_path / "out.txt"
        argv = ["sort", "--memory", "16", "--resume", "--checksum",
                str(path), "-o", str(out)]
        plan = FaultPlan(op="write", nth=12, kind="raise",
                         path_substring="run-")
        with activate(plan):
            assert main(argv) == 1
        assert (tmp_path / "out.txt.sortwork").is_dir()
        assert main(argv) == 0
        assert sha256_file(out) == sha256_file(ref)
        assert not (tmp_path / "out.txt.sortwork").exists()

    def test_corruption_reported_with_location(self, tmp_path, capsys):
        from repro.cli import main

        path = self.write_input(tmp_path)
        out = tmp_path / "out.txt"
        argv = ["sort", "--memory", "16", "--resume", "--checksum",
                str(path), "-o", str(out)]
        plan = FaultPlan(op="write", nth=6, kind="bit_flip",
                         path_substring="run-")
        with activate(plan):
            assert main(argv) == 1
        err = capsys.readouterr().err
        assert "corrupt spill block" in err
        assert "block #" in err
        assert "byte offset" in err
        # The flipped run fails journal verification and is rebuilt.
        ref = tmp_path / "ref.txt"
        assert main(["sort", "--memory", "16", str(path), "-o", str(ref)]) == 0
        assert main(argv) == 0
        assert sha256_file(out) == sha256_file(ref)

    def test_no_resume_hint_for_foreign_work_dir(self, tmp_path, capsys):
        from repro.cli import main

        path = self.write_input(tmp_path)
        foreign = tmp_path / "mydata"
        foreign.mkdir()
        (foreign / "precious.txt").write_text("user data\n")
        code = main(["sort", "--memory", "16", "--resume",
                     "--work-dir", str(foreign),
                     str(path), "-o", str(tmp_path / "out.txt")])
        assert code == 1
        err = capsys.readouterr().err
        assert "refusing to wipe" in err
        # No journal was ever created there: nothing to resume from.
        assert "rerun with --resume" not in err
        assert (foreign / "precious.txt").exists()

    def test_sort_error_is_clean_not_traceback(self, tmp_path, capsys):
        from repro.cli import main

        path = self.write_input(tmp_path)
        plan = FaultPlan(op="write", nth=1, kind="raise")
        with activate(plan):
            code = main(["sort", "--memory", "16", str(path),
                         "-o", str(tmp_path / "out.txt")])
        assert code == 1
        assert "repro: sort failed" in capsys.readouterr().err

    def test_missing_input_file_clean_error(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["sort", str(tmp_path / "nope.txt")])
        assert code == 1
        assert "repro: sort failed" in capsys.readouterr().err


def test_corrupt_block_error_pickles_across_processes():
    # A worker that hits corruption must be able to ship the exception
    # back through the multiprocessing pool; a bad reduce kills the
    # pool's result handler and hangs the parent forever.
    import pickle

    error = CorruptBlockError("/tmp/run-0.txt", 3, 128, "checksum mismatch")
    clone = pickle.loads(pickle.dumps(error))
    assert (clone.path, clone.block_index, clone.offset) == (
        "/tmp/run-0.txt", 3, 128,
    )
    assert str(clone) == str(error)


def test_fault_injected_is_both_sort_and_os_error():
    error = FaultInjected("boom")
    assert isinstance(error, SortError)
    assert isinstance(error, OSError)
