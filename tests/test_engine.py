"""Tests for the unified SortEngine facade and its planner (DESIGN.md §9)."""

import io

import pytest

from repro.core.config import GeneratorSpec, RECOMMENDED, TwoWayConfig
from repro.core.records import FLOAT, INT, STR, DelimitedFormat
from repro.engine.block_io import write_sequence
from repro.engine.planner import (
    SortEngine,
    plan_sort,
    spec_for_format,
)
from repro.merge.kway import kway_merge, validate_merge_params
from repro.workloads.generators import make_input, random_input


class TestPlanner:
    def test_parallel_wins_over_everything(self):
        plan = plan_sort(memory=1_000, workers=4, input_records=10)
        assert plan.mode == "parallel"
        assert plan.reading == "forecasting"
        assert plan.workers == 4

    def test_small_inputs_stay_in_memory(self):
        plan = plan_sort(memory=1_000, input_records=1_000)
        assert plan.mode == "in_memory"
        assert plan.reading is None

    def test_single_pass_spill_reads_naively(self):
        plan = plan_sort(memory=1_000, input_records=5_000, fan_in=10)
        assert plan.mode == "spill"
        assert plan.reading == "naive"

    def test_large_spill_forecasts(self):
        plan = plan_sort(memory=1_000, input_records=1_000_000, fan_in=10)
        assert (plan.mode, plan.reading) == ("spill", "forecasting")

    def test_unknown_size_forecasts(self):
        plan = plan_sort(memory=1_000)
        assert (plan.mode, plan.reading) == ("spill", "forecasting")

    def test_explicit_reading_is_honoured(self):
        plan = plan_sort(
            memory=10, input_records=10_000, reading="double_buffering"
        )
        assert plan.reading == "double_buffering"

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            plan_sort(memory=0)
        with pytest.raises(ValueError):
            plan_sort(memory=10, workers=0)
        with pytest.raises(ValueError):
            plan_sort(memory=10, fan_in=1)
        with pytest.raises(ValueError):
            plan_sort(memory=10, buffer_records=0)
        with pytest.raises(ValueError):
            plan_sort(memory=10, reading="telepathic")


class TestSpecForFormat:
    def test_numeric_formats_left_alone(self):
        spec = GeneratorSpec("2wrs", 100, RECOMMENDED)
        assert spec_for_format(spec, INT) is spec
        assert spec_for_format(spec, FLOAT) is spec

    def test_non_2wrs_left_alone(self):
        spec = GeneratorSpec("lss", 100)
        assert spec_for_format(spec, STR) is spec

    def test_victim_buffer_stripped_for_non_numeric(self):
        spec = GeneratorSpec("2wrs", 100, RECOMMENDED)
        adjusted = spec_for_format(spec, STR)
        assert adjusted.two_way.buffer_setup == "input"
        # Everything else survives.
        assert adjusted.two_way.input_heuristic == RECOMMENDED.input_heuristic

    def test_input_only_setup_kept(self):
        config = TwoWayConfig(buffer_setup="input")
        spec = GeneratorSpec("2wrs", 100, config)
        assert spec_for_format(spec, STR).two_way is config


class TestEngineModes:
    def test_in_memory_mode(self, tmp_path):
        data = list(random_input(500, seed=1))
        engine = SortEngine(GeneratorSpec("lss", 1_000), tmp_dir=str(tmp_path))
        got = list(engine.sort(iter(data)))
        assert got == sorted(data)
        assert engine.plan.mode == "in_memory"
        assert engine.backend is None
        assert engine.report.records == 500
        assert engine.report.runs == 1
        assert engine.report.run_phase.cpu_ops > 0

    def test_spill_mode(self, tmp_path):
        data = list(random_input(5_000, seed=2))
        engine = SortEngine(GeneratorSpec("lss", 300), tmp_dir=str(tmp_path))
        got = list(engine.sort(iter(data)))
        assert got == sorted(data)
        assert engine.plan.mode == "spill"
        assert engine.report.runs > 1
        assert engine.reading_stats is not None
        assert engine.reading_stats.strategy == engine.plan.reading

    def test_parallel_mode(self, tmp_path):
        data = list(random_input(4_000, seed=3))
        engine = SortEngine(
            GeneratorSpec("lss", 400), workers=2, tmp_dir=str(tmp_path)
        )
        got = list(engine.sort(iter(data)))
        assert got == sorted(data)
        assert engine.plan.mode == "parallel"
        assert engine.backend is not None
        assert len(engine.backend.worker_reports) == 2

    def test_known_input_size_skips_probing(self, tmp_path):
        data = list(random_input(2_000, seed=4))
        engine = SortEngine(GeneratorSpec("lss", 100), tmp_dir=str(tmp_path))
        got = list(engine.sort(iter(data), input_records=2_000))
        assert got == sorted(data)
        assert engine.plan.mode == "spill"
        assert "2000" in engine.plan.reason or "large" in engine.plan.reason

    def test_empty_input_every_mode(self, tmp_path):
        """Satellite: zero records must produce a sane report, no ZeroDivision."""
        for kwargs in ({}, {"workers": 2}):
            engine = SortEngine(
                GeneratorSpec("2wrs", 50), tmp_dir=str(tmp_path), **kwargs
            )
            assert list(engine.sort(iter([]))) == []
            report = engine.report
            assert report.records == 0
            assert report.average_run_length == 0.0
            assert "0 records" in report.summary()

    def test_three_backends_byte_identical(self, tmp_path):
        data = list(make_input("mixed_balanced", 4_000, seed=5))
        outputs = []
        for kwargs in (
            {"reading": "naive"},
            {"reading": "forecasting"},
            {"reading": "double_buffering"},
            {"workers": 2},
            {"workers": 3, "partition": "range"},
        ):
            engine = SortEngine(
                GeneratorSpec("lss", 250), tmp_dir=str(tmp_path), **kwargs
            )
            sink = io.StringIO()
            source = io.StringIO("".join(f"{v}\n" for v in data))
            assert engine.sort_stream(source, sink) == len(data)
            outputs.append(sink.getvalue())
        assert len(set(outputs)) == 1

    def test_sort_stream_tolerates_blank_lines(self, tmp_path):
        engine = SortEngine(GeneratorSpec("lss", 100), tmp_dir=str(tmp_path))
        sink = io.StringIO()
        assert engine.sort_stream(io.StringIO("3\n\n1\n\n2\n"), sink) == 3
        assert sink.getvalue() == "1\n2\n3\n"

    def test_sort_stream_keeps_blank_str_records(self, tmp_path):
        # sort --format str must agree with sort(1), which keeps
        # whitespace-only lines.
        engine = SortEngine(
            GeneratorSpec("lss", 100), record_format=STR, tmp_dir=str(tmp_path)
        )
        sink = io.StringIO()
        assert engine.sort_stream(io.StringIO("b\n \na\n"), sink) == 3
        assert sink.getvalue() == " \na\nb\n"

    def test_abandoned_parallel_sort_still_reports_merge_stats(self, tmp_path):
        data = list(random_input(4_000, seed=6))
        engine = SortEngine(
            GeneratorSpec("lss", 400), workers=2, tmp_dir=str(tmp_path)
        )
        stream = engine.sort(iter(data))
        for _ in range(20):
            next(stream)
        stream.close()
        # Instrumentation mirrors the partial merge instead of staying
        # at its constructor zeros.
        assert engine.reading_stats is not None
        assert engine.merge_passes >= 1


class TestEngineFormats:
    def test_str_format_with_2wrs(self, tmp_path):
        words = sorted(f"w{i:04d}" for i in range(3_000))
        import random

        random.Random(9).shuffle(words)
        engine = SortEngine(
            GeneratorSpec("2wrs", 200),
            record_format=STR,
            tmp_dir=str(tmp_path),
        )
        assert list(engine.sort(iter(words))) == sorted(words)
        # The victim buffer's numeric gaps cannot apply to strings.
        assert engine.spec.two_way.buffer_setup == "input"

    def test_delimited_rows_sort_by_key_column(self, tmp_path):
        fmt = DelimitedFormat(",", 1)
        rows = [f"id{i:03d},{(i * 37) % 100},payload{i}" for i in range(500)]
        records = [fmt.decode(row) for row in rows]
        engine = SortEngine(
            GeneratorSpec("lss", 64), record_format=fmt, tmp_dir=str(tmp_path)
        )
        got = [fmt.encode(r) for r in engine.sort(iter(records))]
        assert got == sorted(rows, key=lambda r: (int(r.split(",")[1]), r))

    def test_float_format_round_trips(self, tmp_path):
        import random

        rng = random.Random(3)
        data = [rng.gauss(0, 1000) for _ in range(2_000)]
        engine = SortEngine(
            GeneratorSpec("rs", 100), record_format=FLOAT, tmp_dir=str(tmp_path)
        )
        sink = io.StringIO()
        source = io.StringIO("".join(f"{v!r}\n" for v in data))
        engine.sort_stream(source, sink)
        got = [float(line) for line in sink.getvalue().splitlines()]
        assert got == sorted(data)


class TestMergeFiles:
    def test_merges_kept_files(self, tmp_path):
        import os

        paths = []
        all_values = []
        for i in range(5):
            values = sorted(range(i, 1_000, 5))
            all_values.extend(values)
            path = str(tmp_path / f"sorted-{i}.txt")
            write_sequence(path, values, INT)
            paths.append(path)
        engine = SortEngine(GeneratorSpec("lss", 100), tmp_dir=str(tmp_path))
        got = list(engine.merge_files(paths))
        assert got == sorted(all_values)
        assert engine.report.records == len(all_values)
        assert engine.report.merge_phase.wall_time > 0
        # Inputs are the caller's files: still there.
        assert all(os.path.exists(p) for p in paths)

    def test_intermediate_passes_when_over_fan_in(self, tmp_path):
        paths = []
        for i in range(7):
            path = str(tmp_path / f"s{i}.txt")
            write_sequence(path, sorted(range(i, 700, 7)), INT)
            paths.append(path)
        engine = SortEngine(
            GeneratorSpec("lss", 100), fan_in=3, tmp_dir=str(tmp_path)
        )
        got = list(engine.merge_files(paths))
        assert got == sorted(range(700))
        assert engine.merge_passes > 1


class TestKwayValidation:
    """Satellite: kway_merge validates fan_in and buffer_records."""

    def test_fan_in_below_two_rejected(self):
        with pytest.raises(ValueError, match="fan_in must be >= 2"):
            list(kway_merge([[1], [2]], fan_in=1))

    def test_buffer_records_below_one_rejected(self):
        with pytest.raises(ValueError, match="buffer_records must be >= 1"):
            list(kway_merge([[1]], buffer_records=0))

    def test_stream_count_must_respect_declared_fan_in(self):
        with pytest.raises(ValueError, match="exceed the declared fan_in"):
            list(kway_merge([[1], [2], [3]], fan_in=2))

    def test_valid_declarations_accepted(self):
        assert list(kway_merge([[1, 3], [2]], fan_in=2, buffer_records=8)) == [
            1,
            2,
            3,
        ]

    def test_validate_merge_params_direct(self):
        validate_merge_params(None, None)  # nothing declared, nothing raised
        validate_merge_params(2, 1)
        with pytest.raises(ValueError):
            validate_merge_params(0)
        with pytest.raises(ValueError):
            validate_merge_params(None, -5)
