"""Tests for the Load-Sort-Store baseline (Section 2.1.1)."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runs.load_sort_store import LoadSortStore


class TestLoadSortStore:
    def test_empty(self):
        assert list(LoadSortStore(10).generate_runs([])) == []

    def test_run_length_equals_memory(self):
        runs = list(LoadSortStore(10).generate_runs(range(35)))
        assert [len(r) for r in runs] == [10, 10, 10, 5]

    def test_runs_sorted(self):
        runs = list(LoadSortStore(4).generate_runs([7, 1, 9, 2, 8, 0]))
        assert runs == [[1, 2, 7, 9], [0, 8]]

    def test_sorted_input_still_chunks(self):
        # Unlike RS, LSS cannot exploit pre-sorted input.
        runs = list(LoadSortStore(10).generate_runs(range(100)))
        assert len(runs) == 10

    def test_timsort_variant(self):
        data = [5, 3, 8, 1]
        a = list(LoadSortStore(4, use_heapsort=True).generate_runs(data))
        b = list(LoadSortStore(4, use_heapsort=False).generate_runs(data))
        assert a == b

    def test_stats(self):
        lss = LoadSortStore(10)
        list(lss.generate_runs(range(25)))
        assert lss.stats.records_in == 25
        assert lss.stats.runs_out == 3
        assert lss.stats.average_run_length == 25 / 3


@settings(max_examples=100)
@given(st.lists(st.integers(), max_size=300), st.integers(1, 40))
def test_lss_runs_sorted_and_complete(data, memory):
    runs = list(LoadSortStore(memory).generate_runs(data))
    for run in runs:
        assert run == sorted(run)
        assert len(run) <= memory
    assert sorted(itertools.chain(*runs)) == sorted(data)
