"""Tests for dynamic memory adjustment (Section 3.7.3)."""

import threading

import pytest

from repro.sort.memory_broker import (
    PRIORITY_ORDER,
    ConcurrentSortSimulator,
    MemoryBroker,
    SortJob,
    WaitSituation,
)
from repro.workloads.generators import random_input


class TestMemoryBroker:
    def test_invalid_total(self):
        with pytest.raises(ValueError):
            MemoryBroker(0)

    def test_allocate_within_pool(self):
        broker = MemoryBroker(100)
        assert broker.try_allocate("a", 60)
        assert broker.free == 40
        assert not broker.try_allocate("b", 50)
        assert broker.try_allocate("b", 40)
        assert broker.free == 0

    def test_negative_amount_rejected(self):
        with pytest.raises(ValueError):
            MemoryBroker(10).try_allocate("a", -1)

    def test_release_partial_and_full(self):
        broker = MemoryBroker(100)
        broker.try_allocate("a", 80)
        broker.release("a", 30)
        assert broker.allocated["a"] == 50
        broker.release("a")
        assert "a" not in broker.allocated
        assert broker.free == 100

    def test_release_unknown_owner_is_noop(self):
        broker = MemoryBroker(10)
        broker.release("ghost")
        assert broker.free == 10

    def test_priority_order_matches_paper(self):
        # Section 3.7.3: processes prioritised 1, 3, 5, 4, 2.
        assert [s.value for s in PRIORITY_ORDER] == [1, 3, 5, 4, 2]

    def test_grant_waiting_serves_by_priority(self):
        broker = MemoryBroker(100)
        broker.try_allocate("holder", 100)
        broker.enqueue("later", 50, WaitSituation.FIRST_RUN_MINIMUM)
        broker.enqueue("starter", 50, WaitSituation.ABOUT_TO_START)
        broker.release("holder", 50)
        granted = broker.grant_waiting()
        assert granted == ["starter"]
        assert broker.waiting == ["later"]

    def test_fifo_within_same_situation(self):
        broker = MemoryBroker(60)
        broker.try_allocate("holder", 60)
        broker.enqueue("first", 30, WaitSituation.LATER_RUNS)
        broker.enqueue("second", 30, WaitSituation.LATER_RUNS)
        broker.release("holder", 30)
        assert broker.grant_waiting() == ["first"]

    def test_enqueue_dedups_per_owner(self):
        # Regression: a starved owner re-asking every quantum used to
        # stack requests and be granted all of them at once.
        broker = MemoryBroker(100)
        broker.try_allocate("holder", 100)
        for _ in range(5):
            broker.enqueue("starved", 30, WaitSituation.LATER_RUNS)
        assert broker.waiting == ["starved"]
        broker.release("holder")
        assert broker.grant_waiting() == ["starved"]
        assert broker.allocated["starved"] == 30

    def test_reenqueue_keeps_fifo_stamp(self):
        broker = MemoryBroker(100)
        broker.try_allocate("holder", 100)
        broker.enqueue("first", 40, WaitSituation.LATER_RUNS)
        broker.enqueue("second", 40, WaitSituation.LATER_RUNS)
        broker.enqueue("first", 50, WaitSituation.LATER_RUNS)  # update
        broker.release("holder", 50)
        assert broker.grant_waiting() == ["first"]
        assert broker.allocated["first"] == 50

    def test_grant_clamped_to_maximum(self):
        broker = MemoryBroker(200)
        broker.try_allocate("a", 50)
        broker.try_allocate("holder", 150)
        broker.enqueue("a", 40, WaitSituation.LATER_RUNS, maximum=60)
        broker.release("holder")
        assert broker.grant_waiting() == ["a"]
        assert broker.allocated["a"] == 60  # clamped: 50 + min(40, 10)

    def test_request_at_cap_dropped(self):
        broker = MemoryBroker(200)
        broker.try_allocate("a", 60)
        broker.enqueue("a", 40, WaitSituation.LATER_RUNS, maximum=60)
        assert broker.grant_waiting() == []
        assert broker.waiting == []
        assert broker.allocated["a"] == 60


def make_jobs(big=40_000, smalls=3):
    jobs = [
        SortJob(
            name="big",
            records=list(random_input(big, seed=9)),
            minimum_memory=64,
            maximum_memory=4_096,
        )
    ]
    for i in range(smalls):
        jobs.append(
            SortJob(
                name=f"small{i}",
                records=list(random_input(1_000, seed=i)),
                minimum_memory=64,
                maximum_memory=512,
            )
        )
    return jobs


class TestConcurrentSimulator:
    def test_requires_jobs(self):
        with pytest.raises(ValueError):
            ConcurrentSortSimulator([], total_memory=100)

    def test_all_jobs_finish(self):
        finish = ConcurrentSortSimulator(
            make_jobs(big=5_000), total_memory=1_024, dynamic=True
        ).run()
        assert all(t is not None for t in finish.values())

    def test_static_all_jobs_finish(self):
        finish = ConcurrentSortSimulator(
            make_jobs(big=5_000), total_memory=1_024, dynamic=False
        ).run()
        assert all(t is not None for t in finish.values())

    def test_dynamic_beats_static_on_makespan(self):
        """Zhang & Larson's headline: dynamic adjustment wins."""
        static = ConcurrentSortSimulator(
            make_jobs(), total_memory=2_048, dynamic=False
        ).run()
        dynamic = ConcurrentSortSimulator(
            make_jobs(), total_memory=2_048, dynamic=True
        ).run()
        assert max(dynamic.values()) < max(static.values())

    def test_dynamic_grows_allocations(self):
        jobs = make_jobs(big=10_000, smalls=1)
        sim = ConcurrentSortSimulator(jobs, total_memory=2_048, dynamic=True)
        sim.run()
        big = jobs[0]
        # Later runs are longer than the first (memory grew over time).
        assert max(big.runs) > big.runs[0]

    def test_single_job_gets_whole_pool_dynamic(self):
        jobs = [
            SortJob(
                name="only",
                records=list(random_input(5_000, seed=1)),
                minimum_memory=64,
                maximum_memory=10_000,
            )
        ]
        sim = ConcurrentSortSimulator(jobs, total_memory=1_024, dynamic=True)
        sim.run()
        assert max(jobs[0].runs) >= 512


class RecordingBroker(MemoryBroker):
    """Broker that records every owner's high-water allocation."""

    def __init__(self, total):
        super().__init__(total)
        self.high_water = {}

    def try_allocate(self, owner, amount):
        granted = super().try_allocate(owner, amount)
        if granted:
            held = self.allocated.get(owner, 0)
            if held > self.high_water.get(owner, 0):
                self.high_water[owner] = held
        return granted


class TestAllocationCaps:
    def test_allocations_never_exceed_maximum(self):
        # Regression: stacked duplicate requests from a starved job used
        # to push its allocation past maximum_memory once memory freed.
        jobs = make_jobs(big=20_000, smalls=3)
        sim = ConcurrentSortSimulator(jobs, total_memory=2_048, dynamic=True)
        sim.broker = RecordingBroker(2_048)
        sim.run()
        maxima = {job.name: job.maximum_memory for job in jobs}
        for owner, peak in sim.broker.high_water.items():
            assert peak <= maxima[owner], (
                f"{owner} reached {peak} > maximum {maxima[owner]}"
            )

    def test_pool_never_oversubscribed(self):
        jobs = make_jobs(big=20_000, smalls=3)
        sim = ConcurrentSortSimulator(jobs, total_memory=1_024, dynamic=True)
        sim.broker = RecordingBroker(1_024)
        sim.run()
        assert sum(sim.broker.high_water.values()) >= 0  # ran to completion
        assert all(peak <= 1_024 for peak in sim.broker.high_water.values())


class TestTinyPoolTermination:
    @staticmethod
    def _run_guarded(sim, timeout=15.0):
        """Run the simulator in a thread so a livelock fails the test
        with a timeout instead of hanging the whole suite."""
        outcome = {}

        def target():
            try:
                outcome["result"] = sim.run()
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                outcome["error"] = exc

        thread = threading.Thread(target=target, daemon=True)
        thread.start()
        thread.join(timeout)
        assert not thread.is_alive(), "simulator livelocked (no progress)"
        return outcome

    def test_pool_below_every_minimum_raises(self):
        jobs = [
            SortJob(
                name="a",
                records=list(random_input(500, seed=1)),
                minimum_memory=64,
            ),
            SortJob(
                name="b",
                records=list(random_input(500, seed=2)),
                minimum_memory=64,
            ),
        ]
        sim = ConcurrentSortSimulator(jobs, total_memory=32, dynamic=True)
        outcome = self._run_guarded(sim)
        assert isinstance(outcome.get("error"), RuntimeError)
        assert "minimum" in str(outcome["error"])

    def test_pool_below_every_minimum_raises_static(self):
        jobs = [
            SortJob(
                name="a",
                records=list(random_input(500, seed=1)),
                minimum_memory=64,
            ),
        ]
        sim = ConcurrentSortSimulator(jobs, total_memory=16, dynamic=False)
        outcome = self._run_guarded(sim)
        assert isinstance(outcome.get("error"), RuntimeError)

    def test_pool_fitting_one_minimum_still_finishes(self):
        # 96 records fits one job's minimum at a time: jobs must be
        # served serially rather than raising or spinning.
        jobs = [
            SortJob(
                name=f"j{i}",
                records=list(random_input(300, seed=i)),
                minimum_memory=64,
                maximum_memory=128,
            )
            for i in range(3)
        ]
        sim = ConcurrentSortSimulator(jobs, total_memory=96, dynamic=True)
        outcome = self._run_guarded(sim)
        assert "error" not in outcome
        assert all(t is not None for t in outcome["result"].values())
