"""Tests for dynamic memory adjustment (Section 3.7.3)."""

import pytest

from repro.sort.memory_broker import (
    PRIORITY_ORDER,
    ConcurrentSortSimulator,
    MemoryBroker,
    SortJob,
    WaitSituation,
)
from repro.workloads.generators import random_input


class TestMemoryBroker:
    def test_invalid_total(self):
        with pytest.raises(ValueError):
            MemoryBroker(0)

    def test_allocate_within_pool(self):
        broker = MemoryBroker(100)
        assert broker.try_allocate("a", 60)
        assert broker.free == 40
        assert not broker.try_allocate("b", 50)
        assert broker.try_allocate("b", 40)
        assert broker.free == 0

    def test_negative_amount_rejected(self):
        with pytest.raises(ValueError):
            MemoryBroker(10).try_allocate("a", -1)

    def test_release_partial_and_full(self):
        broker = MemoryBroker(100)
        broker.try_allocate("a", 80)
        broker.release("a", 30)
        assert broker.allocated["a"] == 50
        broker.release("a")
        assert "a" not in broker.allocated
        assert broker.free == 100

    def test_release_unknown_owner_is_noop(self):
        broker = MemoryBroker(10)
        broker.release("ghost")
        assert broker.free == 10

    def test_priority_order_matches_paper(self):
        # Section 3.7.3: processes prioritised 1, 3, 5, 4, 2.
        assert [s.value for s in PRIORITY_ORDER] == [1, 3, 5, 4, 2]

    def test_grant_waiting_serves_by_priority(self):
        broker = MemoryBroker(100)
        broker.try_allocate("holder", 100)
        broker.enqueue("later", 50, WaitSituation.FIRST_RUN_MINIMUM)
        broker.enqueue("starter", 50, WaitSituation.ABOUT_TO_START)
        broker.release("holder", 50)
        granted = broker.grant_waiting()
        assert granted == ["starter"]
        assert broker.waiting == ["later"]

    def test_fifo_within_same_situation(self):
        broker = MemoryBroker(60)
        broker.try_allocate("holder", 60)
        broker.enqueue("first", 30, WaitSituation.LATER_RUNS)
        broker.enqueue("second", 30, WaitSituation.LATER_RUNS)
        broker.release("holder", 30)
        assert broker.grant_waiting() == ["first"]


def make_jobs(big=40_000, smalls=3):
    jobs = [
        SortJob(
            name="big",
            records=list(random_input(big, seed=9)),
            minimum_memory=64,
            maximum_memory=4_096,
        )
    ]
    for i in range(smalls):
        jobs.append(
            SortJob(
                name=f"small{i}",
                records=list(random_input(1_000, seed=i)),
                minimum_memory=64,
                maximum_memory=512,
            )
        )
    return jobs


class TestConcurrentSimulator:
    def test_requires_jobs(self):
        with pytest.raises(ValueError):
            ConcurrentSortSimulator([], total_memory=100)

    def test_all_jobs_finish(self):
        finish = ConcurrentSortSimulator(
            make_jobs(big=5_000), total_memory=1_024, dynamic=True
        ).run()
        assert all(t is not None for t in finish.values())

    def test_static_all_jobs_finish(self):
        finish = ConcurrentSortSimulator(
            make_jobs(big=5_000), total_memory=1_024, dynamic=False
        ).run()
        assert all(t is not None for t in finish.values())

    def test_dynamic_beats_static_on_makespan(self):
        """Zhang & Larson's headline: dynamic adjustment wins."""
        static = ConcurrentSortSimulator(
            make_jobs(), total_memory=2_048, dynamic=False
        ).run()
        dynamic = ConcurrentSortSimulator(
            make_jobs(), total_memory=2_048, dynamic=True
        ).run()
        assert max(dynamic.values()) < max(static.values())

    def test_dynamic_grows_allocations(self):
        jobs = make_jobs(big=10_000, smalls=1)
        sim = ConcurrentSortSimulator(jobs, total_memory=2_048, dynamic=True)
        sim.run()
        big = jobs[0]
        # Later runs are longer than the first (memory grew over time).
        assert max(big.runs) > big.runs[0]

    def test_single_job_gets_whole_pool_dynamic(self):
        jobs = [
            SortJob(
                name="only",
                records=list(random_input(5_000, seed=1)),
                minimum_memory=64,
                maximum_memory=10_000,
            )
        ]
        sim = ConcurrentSortSimulator(jobs, total_memory=1_024, dynamic=True)
        sim.run()
        assert max(jobs[0].runs) >= 512
