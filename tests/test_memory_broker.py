"""Tests for dynamic memory adjustment (Section 3.7.3)."""

import threading
import time
from multiprocessing import get_context

import pytest

from repro.sort.memory_broker import (
    PRIORITY_ORDER,
    ConcurrentSortSimulator,
    MemoryBroker,
    SharedMemoryBroker,
    SortJob,
    WaitSituation,
)
from repro.workloads.generators import random_input


def hammer_pool(args):
    """Worker (top-level for spawn): acquire/hold/release in a loop.

    The poll is bounded: a broker regression that drops a queued
    request must fail this test with a diagnostic, not hang the run.
    """
    proxy, owner, iterations = args
    deadline = time.monotonic() + 30.0
    for i in range(iterations):
        granted = proxy.request_or_enqueue(owner, 60, maximum=60)
        while not granted:
            if time.monotonic() > deadline:
                raise RuntimeError(
                    f"{owner}: no grant after 30s — broker starved a waiter"
                )
            time.sleep(0.002)
            granted = proxy.allocated_to(owner)
        time.sleep(0.001)  # hold the grant while others contend
        proxy.release_and_regrant(owner)
    return owner


class TestMemoryBroker:
    def test_invalid_total(self):
        with pytest.raises(ValueError):
            MemoryBroker(0)

    def test_allocate_within_pool(self):
        broker = MemoryBroker(100)
        assert broker.try_allocate("a", 60)
        assert broker.free == 40
        assert not broker.try_allocate("b", 50)
        assert broker.try_allocate("b", 40)
        assert broker.free == 0

    def test_negative_amount_rejected(self):
        with pytest.raises(ValueError):
            MemoryBroker(10).try_allocate("a", -1)

    def test_release_partial_and_full(self):
        broker = MemoryBroker(100)
        broker.try_allocate("a", 80)
        broker.release("a", 30)
        assert broker.allocated["a"] == 50
        broker.release("a")
        assert "a" not in broker.allocated
        assert broker.free == 100

    def test_release_unknown_owner_is_noop(self):
        broker = MemoryBroker(10)
        broker.release("ghost")
        assert broker.free == 10

    def test_priority_order_matches_paper(self):
        # Section 3.7.3: processes prioritised 1, 3, 5, 4, 2.
        assert [s.value for s in PRIORITY_ORDER] == [1, 3, 5, 4, 2]

    def test_grant_waiting_serves_by_priority(self):
        broker = MemoryBroker(100)
        broker.try_allocate("holder", 100)
        broker.enqueue("later", 50, WaitSituation.FIRST_RUN_MINIMUM)
        broker.enqueue("starter", 50, WaitSituation.ABOUT_TO_START)
        broker.release("holder", 50)
        granted = broker.grant_waiting()
        assert granted == ["starter"]
        assert broker.waiting == ["later"]

    def test_peak_tracks_high_water_mark(self):
        broker = MemoryBroker(100)
        broker.try_allocate("a", 70)
        broker.try_allocate("b", 20)
        broker.release("a")
        broker.try_allocate("c", 10)
        assert broker.peak() == 90
        assert broker.peak() <= broker.total

    def test_request_or_enqueue_grants_or_queues_atomically(self):
        broker = MemoryBroker(100)
        assert broker.request_or_enqueue("a", 80) == 80
        assert broker.request_or_enqueue("b", 80) == 0
        assert broker.waiting == ["b"]
        # maximum clamps the request before the grant attempt.
        assert broker.request_or_enqueue("c", 80, maximum=20) == 20

    def test_request_or_enqueue_caps_total_allocation(self):
        # The immediate-grant path clamps against what the owner
        # already holds, matching grant_waiting's cap semantics: a
        # re-requesting owner can never be pushed past its maximum.
        broker = MemoryBroker(200)
        broker.try_allocate("w", 50)
        assert broker.request_or_enqueue("w", 60, maximum=60) == 10
        assert broker.allocated_to("w") == 60
        # Already at the cap: nothing granted, nothing queued.
        assert broker.request_or_enqueue("w", 60, maximum=60) == 0
        assert broker.waiting == []

    def test_release_and_regrant_serves_waiters(self):
        broker = MemoryBroker(100)
        broker.request_or_enqueue("a", 100)
        broker.request_or_enqueue("b", 60)
        assert broker.release_and_regrant("a") == ["b"]
        assert broker.allocated_to("b") == 60
        assert broker.free_records() == 40

    def test_release_and_regrant_cancels_own_pending_request(self):
        # Regression: a worker that gives up waiting (acquire timeout)
        # signs off with release_and_regrant; its queued request must
        # die with it, or a later release would grant memory to a
        # process that already exited — leaked forever.
        broker = MemoryBroker(100)
        broker.request_or_enqueue("holder", 100)
        broker.request_or_enqueue("quitter", 60)
        broker.request_or_enqueue("patient", 60)
        assert broker.release_and_regrant("quitter") == []  # signs off
        assert broker.waiting == ["patient"]
        assert broker.release_and_regrant("holder") == ["patient"]
        assert broker.allocated_to("quitter") == 0

    def test_activity_counts_grants_and_releases(self):
        broker = MemoryBroker(100)
        before = broker.activity_count()
        broker.try_allocate("a", 10)
        broker.release("a")
        broker.release("ghost")  # releases nothing: no activity
        assert broker.activity_count() == before + 2


class TestSharedMemoryBroker:
    def test_invalid_total(self):
        with pytest.raises(ValueError):
            SharedMemoryBroker(0)

    def test_proxy_round_trips(self):
        with SharedMemoryBroker(100) as shared:
            proxy = shared.proxy
            assert proxy.request_or_enqueue("a", 60) == 60
            assert proxy.request_or_enqueue("b", 60) == 0
            assert proxy.allocated_to("a") == 60
            assert proxy.release_and_regrant("a") == ["b"]
            assert proxy.allocated_to("b") == 60
            assert proxy.free_records() == 40
            assert proxy.peak() == 60

    def test_concurrent_processes_never_overallocate(self):
        # Three processes fighting over a 100-record pool, each cycling
        # 60-record grants: at most one grant can be live at a time, so
        # the high-water mark proves the accounting is process-safe.
        with SharedMemoryBroker(100) as shared:
            args = [
                (shared.proxy, f"proc-{i}", 5) for i in range(3)
            ]
            with get_context("spawn").Pool(3) as pool:
                done = pool.map(hammer_pool, args)
            assert sorted(done) == ["proc-0", "proc-1", "proc-2"]
            assert shared.proxy.peak() == 60  # never two 60s at once
            assert shared.proxy.free_records() == 100

    def test_fifo_within_same_situation(self):
        broker = MemoryBroker(60)
        broker.try_allocate("holder", 60)
        broker.enqueue("first", 30, WaitSituation.LATER_RUNS)
        broker.enqueue("second", 30, WaitSituation.LATER_RUNS)
        broker.release("holder", 30)
        assert broker.grant_waiting() == ["first"]

    def test_enqueue_dedups_per_owner(self):
        # Regression: a starved owner re-asking every quantum used to
        # stack requests and be granted all of them at once.
        broker = MemoryBroker(100)
        broker.try_allocate("holder", 100)
        for _ in range(5):
            broker.enqueue("starved", 30, WaitSituation.LATER_RUNS)
        assert broker.waiting == ["starved"]
        broker.release("holder")
        assert broker.grant_waiting() == ["starved"]
        assert broker.allocated["starved"] == 30

    def test_reenqueue_keeps_fifo_stamp(self):
        broker = MemoryBroker(100)
        broker.try_allocate("holder", 100)
        broker.enqueue("first", 40, WaitSituation.LATER_RUNS)
        broker.enqueue("second", 40, WaitSituation.LATER_RUNS)
        broker.enqueue("first", 50, WaitSituation.LATER_RUNS)  # update
        broker.release("holder", 50)
        assert broker.grant_waiting() == ["first"]
        assert broker.allocated["first"] == 50

    def test_grant_clamped_to_maximum(self):
        broker = MemoryBroker(200)
        broker.try_allocate("a", 50)
        broker.try_allocate("holder", 150)
        broker.enqueue("a", 40, WaitSituation.LATER_RUNS, maximum=60)
        broker.release("holder")
        assert broker.grant_waiting() == ["a"]
        assert broker.allocated["a"] == 60  # clamped: 50 + min(40, 10)

    def test_request_at_cap_dropped(self):
        broker = MemoryBroker(200)
        broker.try_allocate("a", 60)
        broker.enqueue("a", 40, WaitSituation.LATER_RUNS, maximum=60)
        assert broker.grant_waiting() == []
        assert broker.waiting == []
        assert broker.allocated["a"] == 60


def make_jobs(big=40_000, smalls=3):
    jobs = [
        SortJob(
            name="big",
            records=list(random_input(big, seed=9)),
            minimum_memory=64,
            maximum_memory=4_096,
        )
    ]
    for i in range(smalls):
        jobs.append(
            SortJob(
                name=f"small{i}",
                records=list(random_input(1_000, seed=i)),
                minimum_memory=64,
                maximum_memory=512,
            )
        )
    return jobs


class TestConcurrentSimulator:
    def test_requires_jobs(self):
        with pytest.raises(ValueError):
            ConcurrentSortSimulator([], total_memory=100)

    def test_all_jobs_finish(self):
        finish = ConcurrentSortSimulator(
            make_jobs(big=5_000), total_memory=1_024, dynamic=True
        ).run()
        assert all(t is not None for t in finish.values())

    def test_static_all_jobs_finish(self):
        finish = ConcurrentSortSimulator(
            make_jobs(big=5_000), total_memory=1_024, dynamic=False
        ).run()
        assert all(t is not None for t in finish.values())

    def test_dynamic_beats_static_on_makespan(self):
        """Zhang & Larson's headline: dynamic adjustment wins."""
        static = ConcurrentSortSimulator(
            make_jobs(), total_memory=2_048, dynamic=False
        ).run()
        dynamic = ConcurrentSortSimulator(
            make_jobs(), total_memory=2_048, dynamic=True
        ).run()
        assert max(dynamic.values()) < max(static.values())

    def test_dynamic_grows_allocations(self):
        jobs = make_jobs(big=10_000, smalls=1)
        sim = ConcurrentSortSimulator(jobs, total_memory=2_048, dynamic=True)
        sim.run()
        big = jobs[0]
        # Later runs are longer than the first (memory grew over time).
        assert max(big.runs) > big.runs[0]

    def test_single_job_gets_whole_pool_dynamic(self):
        jobs = [
            SortJob(
                name="only",
                records=list(random_input(5_000, seed=1)),
                minimum_memory=64,
                maximum_memory=10_000,
            )
        ]
        sim = ConcurrentSortSimulator(jobs, total_memory=1_024, dynamic=True)
        sim.run()
        assert max(jobs[0].runs) >= 512


class RecordingBroker(MemoryBroker):
    """Broker that records every owner's high-water allocation."""

    def __init__(self, total):
        super().__init__(total)
        self.high_water = {}

    def try_allocate(self, owner, amount):
        granted = super().try_allocate(owner, amount)
        if granted:
            held = self.allocated.get(owner, 0)
            if held > self.high_water.get(owner, 0):
                self.high_water[owner] = held
        return granted


class TestAllocationCaps:
    def test_allocations_never_exceed_maximum(self):
        # Regression: stacked duplicate requests from a starved job used
        # to push its allocation past maximum_memory once memory freed.
        jobs = make_jobs(big=20_000, smalls=3)
        sim = ConcurrentSortSimulator(jobs, total_memory=2_048, dynamic=True)
        sim.broker = RecordingBroker(2_048)
        sim.run()
        maxima = {job.name: job.maximum_memory for job in jobs}
        for owner, peak in sim.broker.high_water.items():
            assert peak <= maxima[owner], (
                f"{owner} reached {peak} > maximum {maxima[owner]}"
            )

    def test_pool_never_oversubscribed(self):
        jobs = make_jobs(big=20_000, smalls=3)
        sim = ConcurrentSortSimulator(jobs, total_memory=1_024, dynamic=True)
        sim.broker = RecordingBroker(1_024)
        sim.run()
        assert sum(sim.broker.high_water.values()) >= 0  # ran to completion
        assert all(peak <= 1_024 for peak in sim.broker.high_water.values())


class TestTinyPoolTermination:
    @staticmethod
    def _run_guarded(sim, timeout=15.0):
        """Run the simulator in a thread so a livelock fails the test
        with a timeout instead of hanging the whole suite."""
        outcome = {}

        def target():
            try:
                outcome["result"] = sim.run()
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                outcome["error"] = exc

        thread = threading.Thread(target=target, daemon=True)
        thread.start()
        thread.join(timeout)
        assert not thread.is_alive(), "simulator livelocked (no progress)"
        return outcome

    def test_pool_below_every_minimum_raises(self):
        jobs = [
            SortJob(
                name="a",
                records=list(random_input(500, seed=1)),
                minimum_memory=64,
            ),
            SortJob(
                name="b",
                records=list(random_input(500, seed=2)),
                minimum_memory=64,
            ),
        ]
        sim = ConcurrentSortSimulator(jobs, total_memory=32, dynamic=True)
        outcome = self._run_guarded(sim)
        assert isinstance(outcome.get("error"), RuntimeError)
        assert "minimum" in str(outcome["error"])

    def test_pool_below_every_minimum_raises_static(self):
        jobs = [
            SortJob(
                name="a",
                records=list(random_input(500, seed=1)),
                minimum_memory=64,
            ),
        ]
        sim = ConcurrentSortSimulator(jobs, total_memory=16, dynamic=False)
        outcome = self._run_guarded(sim)
        assert isinstance(outcome.get("error"), RuntimeError)

    def test_pool_fitting_one_minimum_still_finishes(self):
        # 96 records fits one job's minimum at a time: jobs must be
        # served serially rather than raising or spinning.
        jobs = [
            SortJob(
                name=f"j{i}",
                records=list(random_input(300, seed=i)),
                minimum_memory=64,
                maximum_memory=128,
            )
            for i in range(3)
        ]
        sim = ConcurrentSortSimulator(jobs, total_memory=96, dynamic=True)
        outcome = self._run_guarded(sim)
        assert "error" not in outcome
        assert all(t is not None for t in outcome["result"].values())


class TestCancelledOwners:
    """Posthumous-grant regressions: a cancelled owner never holds memory.

    The resident service cancels jobs that may be anywhere in the
    broker lifecycle — enqueued, mid-grant, or holding memory.  Before
    ``cancel_owner`` existed, a waiter cancelled between ``enqueue``
    and the next ``grant_waiting`` would still be granted memory that
    nobody would ever release (the worker had already unwound).
    """

    def test_cancel_owner_releases_and_retires(self):
        broker = MemoryBroker(100)
        assert broker.try_allocate("job", 60)
        released = broker.cancel_owner("job")
        assert released == 60
        assert broker.allocated_to("job") == 0
        assert broker.free == 100
        assert broker.is_cancelled("job")
        # Retired for good: every grant path refuses it from now on.
        assert not broker.try_allocate("job", 1)
        assert broker.request_or_enqueue("job", 1) == 0
        broker.enqueue("job", 1, WaitSituation.ABOUT_TO_START)
        assert broker.waiting == []

    def test_no_posthumous_grant_via_release_and_regrant(self):
        broker = MemoryBroker(100)
        assert broker.try_allocate("holder", 100)
        assert broker.request_or_enqueue("victim", 50) == 0  # enqueued
        broker.cancel_owner("victim")
        # The release that would have granted the victim its memory.
        broker.release_and_regrant("holder")
        assert broker.allocated_to("victim") == 0
        assert broker.free == 100
        assert broker.waiting == []

    def test_grant_waiting_skips_cancelled_entry_atomically(self):
        broker = MemoryBroker(100)
        assert broker.try_allocate("holder", 100)
        assert broker.request_or_enqueue("dead", 40) == 0
        assert broker.request_or_enqueue("alive", 40) == 0
        # Cancel after both are queued: the grant must skip the dead
        # owner and still serve the live one behind it.
        broker.cancel_owner("dead")
        broker.release_and_regrant("holder")
        assert broker.allocated_to("dead") == 0
        assert broker.allocated_to("alive") == 40

    @pytest.mark.parametrize("rounds", [200])
    def test_cancel_while_enqueued_hammer(self, rounds):
        """Race cancel against the regrant path; no grant may survive.

        One holder thread churns the full pool (its every release
        triggers ``grant_waiting``); victims enqueue and are cancelled
        concurrently.  Any interleaving that lets a cancelled victim
        keep memory leaks it forever — the test asserts the pool comes
        back whole.
        """
        broker = MemoryBroker(100)
        stop = threading.Event()

        def churn():
            while not stop.is_set():
                if broker.try_allocate("holder", 100):
                    broker.release_and_regrant("holder")

        churner = threading.Thread(target=churn)
        churner.start()
        try:
            for round_no in range(rounds):
                victim = f"victim-{round_no}"
                broker.request_or_enqueue(victim, 100)
                broker.cancel_owner(victim)
                assert broker.allocated_to(victim) == 0, victim
        finally:
            stop.set()
            churner.join(timeout=10.0)
        assert not churner.is_alive()
        broker.release("holder")
        assert broker.free == 100
        assert broker.waiting == []


class TestSharedBrokerShutdown:
    """Manager-leak regressions for :class:`SharedMemoryBroker`."""

    def test_shutdown_is_idempotent(self):
        broker = SharedMemoryBroker(100)
        broker.shutdown()
        broker.shutdown()  # second call must be a no-op, not a crash

    def test_context_manager_then_explicit_shutdown(self):
        with SharedMemoryBroker(100) as broker:
            granted = broker.proxy.request_or_enqueue("w", 10, maximum=10)
            assert granted == 10
        broker.shutdown()  # already shut down by __exit__

    def test_construction_failure_stops_manager(self, monkeypatch):
        """If proxy creation fails, the manager process must not leak."""
        from repro.sort import memory_broker as module

        started = []
        real_start = module._BrokerManager.start

        def recording_start(self, *args, **kwargs):
            real_start(self, *args, **kwargs)
            started.append(self)

        monkeypatch.setattr(module._BrokerManager, "start", recording_start)
        monkeypatch.setattr(
            module._BrokerManager,
            "MemoryBroker",
            property(lambda self: (_ for _ in ()).throw(RuntimeError("boom"))),
            raising=False,
        )
        with pytest.raises(RuntimeError, match="boom"):
            SharedMemoryBroker(100)
        assert len(started) == 1
        process = getattr(started[0], "_process", None)
        if process is not None:
            process.join(timeout=10.0)
            assert not process.is_alive()
