"""Tests for the input and output heuristics (Section 4.2)."""

import random

import pytest

from repro.core.heuristics import (
    INPUT_HEURISTICS,
    OUTPUT_HEURISTICS,
    HeuristicContext,
    Side,
    make_input_heuristic,
    make_output_heuristic,
)


def ctx(**overrides):
    defaults = dict(rng=random.Random(0))
    defaults.update(overrides)
    return HeuristicContext(**defaults)


class TestSide:
    def test_other(self):
        assert Side.TOP.other is Side.BOTTOM
        assert Side.BOTTOM.other is Side.TOP


class TestRegistry:
    def test_input_heuristics_registered(self):
        # The paper's six plus the Section 7.1 adaptive extension.
        assert set(INPUT_HEURISTICS) == {
            "random",
            "alternate",
            "mean",
            "median",
            "useful",
            "balancing",
            "adaptive",
        }

    def test_five_output_heuristics(self):
        assert set(OUTPUT_HEURISTICS) == {
            "random",
            "alternate",
            "useful",
            "balancing",
            "min_distance",
        }

    def test_unknown_names(self):
        with pytest.raises(ValueError, match="unknown input"):
            make_input_heuristic("zipf")
        with pytest.raises(ValueError, match="unknown output"):
            make_output_heuristic("zipf")

    def test_fresh_instances(self):
        assert make_input_heuristic("alternate") is not make_input_heuristic(
            "alternate"
        )


class TestInputHeuristics:
    def test_alternate_flip_flops(self):
        h = make_input_heuristic("alternate")
        sides = [h.choose(0, ctx()) for _ in range(4)]
        assert sides == [Side.BOTTOM, Side.TOP, Side.BOTTOM, Side.TOP]

    def test_mean_routes_by_buffer_mean(self):
        h = make_input_heuristic("mean")
        # Paper example: 40 vs mean 45 -> BottomHeap; 50 vs 44.5 -> Top.
        assert h.choose(40, ctx(input_mean=45.0)) is Side.BOTTOM
        assert h.choose(50, ctx(input_mean=44.5)) is Side.TOP

    def test_mean_equal_goes_bottom(self):
        # "not greater than the mean ... pushed into the BottomHeap".
        h = make_input_heuristic("mean")
        assert h.choose(45, ctx(input_mean=45.0)) is Side.BOTTOM

    def test_median_routes_by_buffer_median(self):
        h = make_input_heuristic("median")
        assert h.choose(10, ctx(input_median=20)) is Side.BOTTOM
        assert h.choose(30, ctx(input_median=20)) is Side.TOP

    def test_useful_prefers_productive_heap(self):
        h = make_input_heuristic("useful")
        productive_top = ctx(
            top_size=10, bottom_size=10, top_outputs=50, bottom_outputs=5
        )
        assert h.choose(0, productive_top) is Side.TOP

    def test_balancing_prefers_smaller_heap(self):
        h = make_input_heuristic("balancing")
        assert h.choose(0, ctx(top_size=2, bottom_size=9)) is Side.TOP
        assert h.choose(0, ctx(top_size=9, bottom_size=2)) is Side.BOTTOM

    def test_balancing_wants_rebalance(self):
        assert make_input_heuristic("balancing").wants_rebalance
        assert not make_input_heuristic("mean").wants_rebalance

    def test_random_uses_rng(self):
        h = make_input_heuristic("random")
        rng = random.Random(1)
        sides = {h.choose(0, ctx(rng=rng)) for _ in range(50)}
        assert sides == {Side.TOP, Side.BOTTOM}


class TestOutputHeuristics:
    def test_alternate_starts_with_bottom(self):
        h = make_output_heuristic("alternate")
        assert h.choose(ctx()) is Side.BOTTOM
        assert h.choose(ctx()) is Side.TOP

    def test_alternate_resets_each_run(self):
        h = make_output_heuristic("alternate")
        h.choose(ctx())
        h.on_run_start()
        assert h.choose(ctx()) is Side.BOTTOM

    def test_balancing_pops_larger_heap(self):
        h = make_output_heuristic("balancing")
        assert h.choose(ctx(top_size=9, bottom_size=2)) is Side.TOP
        assert h.choose(ctx(top_size=2, bottom_size=9)) is Side.BOTTOM

    def test_useful_pops_productive_heap(self):
        h = make_output_heuristic("useful")
        productive_bottom = ctx(
            top_size=10, bottom_size=10, top_outputs=5, bottom_outputs=50
        )
        assert h.choose(productive_bottom) is Side.BOTTOM

    def test_min_distance_pops_closer_head(self):
        h = make_output_heuristic("min_distance")
        closer_top = ctx(first_output=100, top_head=110, bottom_head=50)
        assert h.choose(closer_top) is Side.TOP
        closer_bottom = ctx(first_output=100, top_head=200, bottom_head=95)
        assert h.choose(closer_bottom) is Side.BOTTOM

    def test_min_distance_without_first_output_is_random(self):
        h = make_output_heuristic("min_distance")
        rng = random.Random(3)
        sides = {h.choose(ctx(rng=rng)) for _ in range(50)}
        assert sides == {Side.TOP, Side.BOTTOM}


class CountingStats:
    """Fake statistics provider recording how often it is consulted."""

    def __init__(self, mean=42.0, median=40, sample=(39, 40, 45)):
        self.calls = {"mean": 0, "median": 0, "sample": 0}
        self._mean = mean
        self._median = median
        self._sample = list(sample)

    def mean(self):
        self.calls["mean"] += 1
        return self._mean

    def median(self):
        self.calls["median"] += 1
        return self._median

    def sample(self):
        self.calls["sample"] += 1
        return self._sample


class TestLazyContext:
    def test_construction_computes_nothing(self):
        stats = CountingStats()
        ctx(stats=stats)
        assert stats.calls == {"mean": 0, "median": 0, "sample": 0}

    def test_statistics_fetched_on_first_access_only(self):
        stats = CountingStats()
        c = ctx(stats=stats)
        assert c.input_mean == pytest.approx(42.0)
        assert c.input_mean == pytest.approx(42.0)
        assert stats.calls["mean"] == 1
        assert stats.calls["median"] == 0
        assert c.input_median == 40
        assert stats.calls["median"] == 1

    def test_explicit_values_bypass_provider(self):
        stats = CountingStats()
        c = ctx(input_mean=7.0, stats=stats)
        assert c.input_mean == pytest.approx(7.0)
        assert stats.calls["mean"] == 0

    def test_without_provider_statistics_are_none(self):
        c = ctx()
        assert c.input_mean is None
        assert c.input_median is None
        assert c.input_sample is None

    def test_non_stats_heuristics_never_touch_provider(self):
        stats = CountingStats()
        for name in ("random", "alternate", "useful", "balancing"):
            h = make_input_heuristic(name)
            h.choose(0, ctx(stats=stats))
        for name in ("random", "alternate", "useful", "balancing",
                     "min_distance"):
            h = make_output_heuristic(name)
            h.choose(ctx(stats=stats))
        assert stats.calls == {"mean": 0, "median": 0, "sample": 0}

    def test_mean_heuristic_reads_only_the_mean(self):
        stats = CountingStats()
        make_input_heuristic("mean").choose(50, ctx(stats=stats))
        assert stats.calls == {"mean": 1, "median": 0, "sample": 0}


class TestUsefulness:
    def test_usefulness_definition(self):
        c = ctx(top_size=4, bottom_size=2, top_outputs=8, bottom_outputs=8)
        assert c.usefulness(Side.TOP) == pytest.approx(2.0)
        assert c.usefulness(Side.BOTTOM) == pytest.approx(4.0)

    def test_usefulness_empty_heap(self):
        c = ctx(top_size=0, top_outputs=3)
        assert c.usefulness(Side.TOP) == pytest.approx(3.0)
