"""Differential testing: the CLI sort vs GNU sort and Python sorted().

Random corpora per record format are piped through ``repro.cli sort``
and the output is compared *byte-for-byte* against independent oracles:

* ``sorted()`` over the decoded records, re-encoded through the same
  :class:`RecordFormat` — catches any loss, duplication or reordering
  introduced by the spill/merge machinery, for every format;
* ``LC_ALL=C sort`` (GNU coreutils; skipped when absent) for the
  formats whose on-disk ordering contract matches an external tool's:
  ``str`` is plain byte order and ``int`` is ``sort -n`` — an oracle
  that shares no code with this repository.

The default-suite slice covers every format once; the ``stress`` sweep
crosses memory budgets x reading strategies x worker counts (the CI
resilience job runs it).  Corpora derive from ``REPRO_STRESS_SEED``.
"""

import os
import random
import shutil
import subprocess

import pytest

from _helpers import sha256_file, stress_case, stress_seed
from repro.cli import main
from repro.core.records import resolve_format

GNU_SORT = shutil.which("sort")


# ---------------------------------------------------------------------------
# corpora
# ---------------------------------------------------------------------------


def corpus_lines(fmt, n, *seed_parts):
    """Deterministic random lines for one format."""
    rng = random.Random(stress_seed("differential", fmt, n, *seed_parts))
    if fmt == "int":
        # Canonical encodings only (no +, no leading zeros), so GNU
        # sort -n emits byte-identical lines for equal keys.
        return [str(rng.randint(-10**9, 10**9)) for _ in range(n)]
    if fmt == "float":
        # repr() round-trips exactly and is the CLI's float encoding.
        lines = [repr(rng.uniform(-1e6, 1e6)) for _ in range(n - n // 8)]
        lines += [repr(float(rng.randint(-50, 50))) for _ in range(n // 8)]
        return lines
    if fmt == "str":
        alphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ" \
                   "0123456789 _-.:/"
        return [
            "".join(rng.choice(alphabet) for _ in range(rng.randint(0, 40)))
            for _ in range(n)
        ]
    if fmt == "csv":
        # The key column mixes numeric and text tokens on purpose: the
        # type-ranked key order (numbers before text) must stay total.
        def key_token():
            roll = rng.random()
            if roll < 0.4:
                return str(rng.randint(-1000, 1000))
            if roll < 0.6:
                return f"{rng.uniform(-10, 10):.4f}"
            return "".join(
                rng.choice("abcdefgh") for _ in range(rng.randint(1, 6))
            )

        return [
            f"f{rng.randint(0, 99)},{key_token()},tail{rng.randint(0, 9)}"
            for _ in range(n)
        ]
    raise AssertionError(fmt)  # pragma: no cover


def write_corpus(tmp_path, fmt, n, *seed_parts):
    path = tmp_path / f"{fmt}.in"
    path.write_text(
        "".join(line + "\n" for line in corpus_lines(fmt, n, *seed_parts))
    )
    return path


def cli_format_args(fmt):
    if fmt == "csv":
        return ["--format", "csv", "--key", "1"]
    return [] if fmt == "int" else ["--format", fmt]


def record_format_for(fmt):
    return resolve_format("csv", key=1) if fmt == "csv" else resolve_format(fmt)


# ---------------------------------------------------------------------------
# oracles
# ---------------------------------------------------------------------------


def python_reference(source, fmt):
    """sorted() over decoded records, re-encoded: the in-memory oracle."""
    record_format = record_format_for(fmt)
    with open(source, "r", encoding="utf-8") as handle:
        records = record_format.decode_block(handle.readlines())
    return record_format.encode_block(sorted(records))


def gnu_reference(source, fmt):
    """GNU sort's byte output, or None when no GNU oracle applies."""
    if GNU_SORT is None:
        return None
    if fmt == "str":
        flags = []
    elif fmt == "int":
        flags = ["-n"]
    else:
        return None  # float/csv encodings have no byte-exact GNU twin
    result = subprocess.run(
        [GNU_SORT, *flags, str(source)],
        capture_output=True,
        env={**os.environ, "LC_ALL": "C"},
        check=True,
    )
    return result.stdout


def run_differential_case(
    tmp_path, fmt, *, memory=64, reading="auto", workers=1, records=2_000,
    binary=False,
):
    case = dict(
        fmt=fmt, memory=memory, reading=reading, workers=workers,
        binary=binary,
    )
    source = write_corpus(tmp_path, fmt, records, memory, reading, workers)
    out = tmp_path / f"{fmt}{'.bin' if binary else ''}.out"
    argv = ["sort", "--memory", str(memory), "--fan-in", "4",
            *cli_format_args(fmt)]
    if reading != "auto":
        argv += ["--reading", reading]
    if workers > 1:
        argv += ["--workers", str(workers)]
    if binary:
        argv += ["--binary-spill"]
    argv += [str(source), "-o", str(out)]
    assert main(argv) == 0, stress_case(**case)

    got = out.read_bytes()
    want = python_reference(source, fmt).encode("utf-8")
    assert got == want, (
        "CLI output differs from Python sorted() oracle: "
        + stress_case(**case)
    )
    gnu = gnu_reference(source, fmt)
    if gnu is not None:
        assert got == gnu, (
            "CLI output differs from LC_ALL=C GNU sort oracle: "
            + stress_case(**case)
        )
    return out


FORMATS = ["int", "float", "str", "csv"]


class TestDifferentialSmoke:
    """Every format once, spilling memory budget, default reading."""

    @pytest.mark.parametrize("fmt", FORMATS)
    def test_format_against_oracles(self, tmp_path, fmt):
        run_differential_case(tmp_path, fmt)

    @pytest.mark.skipif(GNU_SORT is None, reason="GNU sort not installed")
    def test_gnu_oracle_actually_used(self, tmp_path):
        # Guard against the GNU comparison silently short-circuiting.
        assert gnu_reference(write_corpus(tmp_path, "str", 50), "str")

    def test_in_memory_path_matches_oracles(self, tmp_path):
        run_differential_case(tmp_path, "int", memory=50_000, records=1_000)

    def test_backends_byte_identical(self, tmp_path):
        serial = run_differential_case(tmp_path, "int", workers=1)
        parallel = run_differential_case(tmp_path, "int", workers=2)
        assert sha256_file(serial) == sha256_file(parallel)

    @pytest.mark.parametrize("fmt", FORMATS)
    def test_binary_spill_matches_text_and_oracles(self, tmp_path, fmt):
        """--binary-spill output equals the text path's byte for byte
        (both already checked against sorted() and GNU sort)."""
        text = run_differential_case(tmp_path, fmt)
        binary = run_differential_case(tmp_path, fmt, binary=True)
        assert sha256_file(text) == sha256_file(binary)


@pytest.mark.stress
class TestDifferentialStress:
    """memory budgets x reading strategies x formats, plus workers."""

    @pytest.mark.parametrize("memory", [32, 257, 4_096])
    @pytest.mark.parametrize(
        "reading", ["naive", "forecasting", "double_buffering"]
    )
    @pytest.mark.parametrize("fmt", FORMATS)
    def test_serial_sweep(self, tmp_path, fmt, reading, memory):
        run_differential_case(
            tmp_path, fmt, memory=memory, reading=reading, records=6_000
        )

    @pytest.mark.parametrize("fmt", FORMATS)
    def test_parallel_sweep(self, tmp_path, fmt):
        run_differential_case(
            tmp_path, fmt, memory=128, workers=2, records=6_000
        )

    @pytest.mark.parametrize("memory", [32, 4_096])
    @pytest.mark.parametrize("workers", [1, 2])
    @pytest.mark.parametrize("fmt", FORMATS)
    def test_binary_sweep(self, tmp_path, fmt, workers, memory):
        """Binary and text paths stay byte-identical under stress."""
        text = run_differential_case(
            tmp_path, fmt, memory=memory, workers=workers, records=6_000
        )
        binary = run_differential_case(
            tmp_path, fmt, memory=memory, workers=workers, records=6_000,
            binary=True,
        )
        assert sha256_file(text) == sha256_file(binary)

    @pytest.mark.parametrize("binary", [False, True])
    @pytest.mark.parametrize("fmt", ["int", "csv"])
    def test_durable_checksummed_sweep(self, tmp_path, fmt, binary):
        """--resume --checksum must not change a fault-free sort's bytes."""
        source = write_corpus(tmp_path, fmt, 4_000, "durable")
        plain = tmp_path / "plain.out"
        durable = tmp_path / "durable.out"
        base = ["sort", "--memory", "64", *cli_format_args(fmt)]
        if binary:
            base += ["--binary-spill"]
        assert main(base + [str(source), "-o", str(plain)]) == 0
        assert main(
            base + ["--resume", "--checksum", str(source), "-o", str(durable)]
        ) == 0
        assert sha256_file(plain) == sha256_file(durable)
