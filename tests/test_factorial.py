"""Tests for the crossed factorial experiment runner (Section 5.2)."""

import pytest

from repro.core.config import TwoWayConfig
from repro.stats.factorial import (
    BASE_DATASET_SEED,
    FactorialSettings,
    count_runs,
    run_factorial,
)


SMALL = FactorialSettings(
    memory_capacity=100,
    input_records=2_000,
    seeds=(1, 2),
    buffer_setups=("input", "both"),
    buffer_sizes=(0.02, 0.2),
    input_heuristics=("mean", "random"),
    output_heuristics=("random", "balancing"),
)


class TestSettings:
    def test_validate_rejects_unknown_heuristics(self):
        bad = FactorialSettings(input_heuristics=("zipf",))
        with pytest.raises(ValueError, match="unknown input"):
            bad.validate()

    def test_validate_rejects_empty_seeds(self):
        bad = FactorialSettings(seeds=())
        with pytest.raises(ValueError, match="seed"):
            bad.validate()

    def test_cells_product(self):
        assert SMALL.cells == 2 * 2 * 2 * 2

    def test_paper_full_crossing_size(self):
        # Table 5.1: 3 x 4 x 6 x 5 = 360 configurations.
        assert FactorialSettings().cells == 360


class TestCountRuns:
    def test_deterministic_per_seed(self):
        config = TwoWayConfig(seed=1)
        a = count_runs("random", config, 100, 2_000, seed=7)
        b = count_runs("random", config, 100, 2_000, seed=7)
        assert a == b

    def test_seed_varies_noise_not_structure(self):
        """Different seeds keep the base dataset, so run counts barely move."""
        config = TwoWayConfig(seed=1)
        counts = {
            count_runs("reverse_sorted", config, 100, 2_000, seed=s)
            for s in (1, 2, 3)
        }
        # Reverse-sorted stays a single run regardless of the noise draw.
        assert counts == {1}


class TestRunFactorial:
    def test_observation_count(self):
        design = run_factorial("random", SMALL)
        assert len(design) == SMALL.cells * len(SMALL.seeds)

    def test_factor_names_match_table_5_1(self):
        design = run_factorial("random", SMALL)
        assert [f.name for f in design.factors] == ["i", "j", "k", "l"]

    def test_sorted_dataset_at_most_one_startup_run(self):
        # One run for every configuration; the Random input heuristic
        # may add one bounded startup run (see EXPERIMENTS.md).
        design = run_factorial("sorted", SMALL)
        assert set(design.values) <= {1.0, 2.0}
        assert 1.0 in set(design.values)

    def test_base_seed_constant(self):
        # The base dataset seed is fixed; only noise varies per replicate.
        assert isinstance(BASE_DATASET_SEED, int)
