"""End-to-end invariants across the whole library.

Property-based integration tests: every run generator, pushed through
the full external-sort pipeline over the simulated disk, must produce
exactly the sorted input — for any input, any memory size, any fan-in.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import TwoWayConfig
from repro.core.two_way import TwoWayReplacementSelection
from repro.iosim.disk import DiskGeometry, DiskModel
from repro.iosim.files import SimulatedFileSystem
from repro.runs.batched import BatchedReplacementSelection
from repro.runs.load_sort_store import LoadSortStore
from repro.runs.replacement_selection import ReplacementSelection
from repro.sort.external import ExternalSort

GENERATORS = {
    "rs": lambda memory: ReplacementSelection(memory),
    "2wrs": lambda memory: TwoWayReplacementSelection(memory),
    "lss": lambda memory: LoadSortStore(memory),
    "brs": lambda memory: BatchedReplacementSelection(memory, minirun_length=8),
}


def small_fs():
    return SimulatedFileSystem(DiskModel(geometry=DiskGeometry(page_records=16)))


@settings(max_examples=25, deadline=None)
@given(
    st.lists(st.integers(-10**6, 10**6), max_size=400),
    st.integers(4, 60),
    st.integers(2, 6),
    st.sampled_from(sorted(GENERATORS)),
)
def test_pipeline_output_is_sorted_input(data, memory, fan_in, generator_name):
    generator = GENERATORS[generator_name](memory)
    pipeline = ExternalSort(generator, fs=small_fs(), fan_in=fan_in)
    out, report = pipeline.sort(data)
    assert out.read_all() == sorted(data)
    assert report.records == len(data)
    assert sum(report.run_lengths) == len(data)


@settings(max_examples=25, deadline=None)
@given(
    st.lists(st.integers(0, 1000), min_size=1, max_size=300),
    st.integers(4, 40),
)
def test_all_generators_agree(data, memory):
    """Different run generators must yield identical sorted output."""
    outputs = []
    for name in sorted(GENERATORS):
        generator = GENERATORS[name](memory)
        runs = list(generator.generate_runs(iter(data)))
        merged = sorted(itertools.chain(*runs))
        outputs.append(merged)
    assert all(output == outputs[0] for output in outputs)


@settings(max_examples=20, deadline=None)
@given(
    st.lists(st.integers(-1000, 1000), max_size=250),
    st.integers(4, 30),
)
def test_2wrs_never_more_runs_than_lss(data, memory):
    """2WRS runs are at least memory-sized, so never beaten by LSS."""
    twrs = TwoWayReplacementSelection(
        memory, TwoWayConfig(buffer_fraction=0.0)
    )
    lss = LoadSortStore(memory)
    assert twrs.count_runs(iter(data)) <= lss.count_runs(iter(data)) + 1


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(), max_size=300), st.integers(2, 40))
def test_run_phase_conserves_records(data, memory):
    generator = TwoWayReplacementSelection(memory)
    total = 0
    for streams in generator.generate_run_streams(iter(data)):
        assert streams.check_invariants()
        total += len(streams)
    assert total == len(data)


@settings(max_examples=15, deadline=None)
@given(st.lists(st.integers(0, 10**6), min_size=50, max_size=400))
def test_disk_accounting_consistent(data):
    """Elapsed simulated time reconciles with the access counters."""
    fs = small_fs()
    pipeline = ExternalSort(ReplacementSelection(20), fs=fs, fan_in=3)
    _, report = pipeline.sort(data)
    for phase in (report.run_phase, report.merge_phase):
        stats = phase.disk
        geometry = fs.disk.geometry
        expected = (
            stats.random_accesses * geometry.random_access_cost()
            + stats.sequential_accesses * geometry.sequential_access_cost()
        )
        assert phase.io_time == pytest.approx(expected)
        assert stats.total_accesses == stats.pages_read + stats.pages_written
