"""Atomic output publish: a killed job never leaves a partial output.

Before this regression suite, every CLI subcommand streamed records
straight into the user's output path — a crash mid-final-merge left a
file that *looked* like a finished sort but held a prefix of it.  The
fix routes every publish through
:func:`repro.engine.resilience.atomic_output` (write ``OUTPUT.tmp``,
fsync, ``os.replace``), for the serial CLI and the resident service
alike; these tests inject write faults at the publish seam and assert
the output path either holds the complete result or does not exist —
never anything in between (and never a stray ``.tmp``).
"""

import io
import os

import pytest

from repro.cli import main
from repro.engine.errors import SortError
from repro.testing.faults import FaultInjected, FaultPlan, activate


def _values(tmp_path, name="in.txt", n=400):
    path = tmp_path / name
    values = [(7 * i) % n for i in range(n)]
    path.write_text("\n".join(str(v) for v in values) + "\n")
    return path, values


def _publish_fault(out_path, nth=1):
    """A write fault aimed at the atomic-publish temp file only."""
    return FaultPlan(
        op="write", nth=nth, kind="raise",
        path_substring=os.path.basename(str(out_path)) + ".tmp",
    )


def _assert_nothing_published(out_path):
    assert not os.path.exists(out_path), "partial output escaped"
    assert not os.path.exists(str(out_path) + ".tmp"), "tmp file leaked"


class TestSerialCliPublish:
    def test_sort_success_replaces_atomically(self, tmp_path, capsys):
        path, values = _values(tmp_path)
        out = tmp_path / "out.txt"
        assert main(["sort", "--memory", "64", str(path),
                     "-o", str(out)]) == 0
        got = [int(line) for line in out.read_text().splitlines()]
        assert got == sorted(values)
        assert not os.path.exists(str(out) + ".tmp")

    def test_sort_faulted_publish_leaves_nothing(self, tmp_path, capsys):
        path, _ = _values(tmp_path)
        out = tmp_path / "out.txt"
        with activate(_publish_fault(out)):
            code = main(["sort", "--memory", "64", str(path),
                         "-o", str(out)])
        assert code != 0
        _assert_nothing_published(out)

    def test_sort_fault_mid_final_merge_leaves_nothing(
        self, tmp_path, capsys
    ):
        # nth=3: let a couple of result blocks land first, then die —
        # the partially-written tmp must be discarded, not published.
        path, _ = _values(tmp_path, n=2000)
        out = tmp_path / "out.txt"
        with activate(_publish_fault(out, nth=3)):
            code = main(["sort", "--memory", "64", "--block-records", "128",
                         str(path), "-o", str(out)])
        assert code != 0
        _assert_nothing_published(out)

    @pytest.mark.parametrize(
        "argv_tail",
        [
            ["distinct"],
            ["agg", "--agg", "count"],
            ["topk", "-k", "5"],
        ],
        ids=["distinct", "agg", "topk"],
    )
    def test_operator_faulted_publish_leaves_nothing(
        self, tmp_path, argv_tail, capsys
    ):
        path, _ = _values(tmp_path)
        out = tmp_path / "out.txt"
        argv = argv_tail + ["--memory", "64", str(path), "-o", str(out)]
        with activate(_publish_fault(out)):
            code = main(argv)
        assert code != 0
        _assert_nothing_published(out)

    def test_join_faulted_publish_leaves_nothing(self, tmp_path, capsys):
        left, _ = _values(tmp_path, "left.txt", n=50)
        right, _ = _values(tmp_path, "right.txt", n=50)
        out = tmp_path / "joined.txt"
        with activate(_publish_fault(out)):
            code = main(["join", "--memory", "64", str(left), str(right),
                         "-o", str(out)])
        assert code != 0
        _assert_nothing_published(out)

    def test_merge_faulted_publish_leaves_nothing(self, tmp_path, capsys):
        sorted_a = tmp_path / "a.txt"
        sorted_b = tmp_path / "b.txt"
        sorted_a.write_text("\n".join(str(v) for v in range(0, 100, 2)) + "\n")
        sorted_b.write_text("\n".join(str(v) for v in range(1, 100, 2)) + "\n")
        out = tmp_path / "merged.txt"
        with activate(_publish_fault(out)):
            code = main(["merge", str(sorted_a), str(sorted_b),
                         "-o", str(out)])
        assert code != 0
        _assert_nothing_published(out)

    def test_stdout_path_is_untouched_by_publish(self, tmp_path, capsys):
        # No -o: output goes to stdout, no tmp machinery involved.
        path, values = _values(tmp_path, n=50)
        assert main(["sort", "--memory", "64", str(path)]) == 0
        got = [int(line) for line in capsys.readouterr().out.split()]
        assert got == sorted(values)


class TestServicePublish:
    """The same guarantee through the service runner's publish path."""

    def test_run_job_faulted_publish_leaves_nothing(self, tmp_path):
        from repro.service.jobs import JobSpec
        from repro.service.runner import run_job

        path, _ = _values(tmp_path)
        result = tmp_path / "jobs" / "OUTPUT"
        result.parent.mkdir()
        spec = JobSpec(op="sort", input=str(path), memory=64)
        with activate(_publish_fault(result)):
            with pytest.raises((FaultInjected, SortError)):
                run_job(
                    spec, memory=64, work_dir=str(tmp_path / "work"),
                    result_path=str(result), job_id="j1",
                )
        _assert_nothing_published(result)

    def test_run_job_success_then_rerun_is_identical(self, tmp_path):
        from repro.service.jobs import JobSpec
        from repro.service.runner import run_job

        path, values = _values(tmp_path)
        result = tmp_path / "OUTPUT"
        spec = JobSpec(op="sort", input=str(path), memory=64)
        outcome = run_job(
            spec, memory=64, work_dir=str(tmp_path / "work"),
            result_path=str(result), job_id="j1",
        )
        assert outcome.records_out == len(values)
        first = result.read_bytes()
        assert [int(v) for v in first.split()] == sorted(values)
        run_job(
            spec, memory=64, work_dir=str(tmp_path / "work2"),
            result_path=str(result), job_id="j1",
        )
        assert result.read_bytes() == first
