"""The repro.ops operators: semantics, memory bounds, backend identity.

Each operator is checked three ways:

* **semantics** against trivial Python oracles (set/dict/sorted);
* **byte identity** across execution modes — in-memory vs spilled
  (tiny ``memory``) and serial vs ``workers=2`` must produce the same
  output, record for record;
* **bounded memory** via the engine's SpillSession peak
  instrumentation: the aggregating merge never materialises a group.
"""

import random

import pytest

from repro.core.config import GeneratorSpec
from repro.core.records import INT, STR, resolve_format
from repro.engine.planner import (
    OperatorPlan,
    SortEngine,
    plan_operator,
)
from repro.merge.kway import grouped, kway_merge
from repro.ops import (
    AGGREGATES,
    Distinct,
    GroupByAggregate,
    SortMergeJoin,
    TopK,
)

MEMORY = 64


def small_engine(record_format=INT, memory=MEMORY, **kwargs):
    return SortEngine(
        GeneratorSpec("lss", memory), record_format=record_format, **kwargs
    )


def int_corpus(n=2_000, dupes=True, seed=11):
    rng = random.Random(seed)
    top = n // 4 if dupes else 10 * n
    return [rng.randint(0, top) for _ in range(n)]


def csv_corpus(n=2_000, keys=40, seed=13):
    rng = random.Random(seed)
    fmt = resolve_format("csv", key=0)
    rows = [
        f"k{rng.randint(0, keys):03d},{rng.randint(-100, 100)},"
        f"p{rng.randint(0, 9)}"
        for _ in range(n)
    ]
    return fmt, [fmt.decode(row) for row in rows]


# ---------------------------------------------------------------------------
# planner
# ---------------------------------------------------------------------------


class TestPlanOperator:
    def test_topk_heap_short_circuit(self):
        plan = plan_operator(operator="topk", memory=100, k=10)
        assert plan.mode == "heap"
        assert plan.sort_plan is None

    def test_topk_large_k_delegates_to_sort(self):
        plan = plan_operator(operator="topk", memory=100, k=1_000)
        assert plan.mode == "sort"
        assert plan.sort_plan is not None

    def test_topk_parallel_never_heap(self):
        plan = plan_operator(operator="topk", memory=100, k=10, workers=2)
        assert plan.mode == "sort"
        assert plan.sort_plan.mode == "parallel"

    def test_small_known_input_is_in_memory(self):
        plan = plan_operator(
            operator="distinct", memory=100, input_records=50
        )
        assert plan.mode == "in_memory"

    def test_unknown_input_sorts(self):
        plan = plan_operator(operator="aggregate", memory=100)
        assert plan.mode == "sort"

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError, match="unknown operator"):
            plan_operator(operator="cartesian", memory=10)

    def test_topk_needs_k(self):
        with pytest.raises(ValueError, match="k >= 0"):
            plan_operator(operator="topk", memory=10)


# ---------------------------------------------------------------------------
# grouped merge
# ---------------------------------------------------------------------------


class TestGroupedMerge:
    def test_groups_span_runs(self):
        runs = [[1, 1, 3, 5], [1, 2, 3], [3, 3, 9]]
        groups = [
            (key, list(group))
            for key, group in grouped(kway_merge(runs), lambda r: r)
        ]
        assert groups == [
            (1, [1, 1, 1]),
            (2, [2]),
            (3, [3, 3, 3, 3]),
            (5, [5]),
            (9, [9]),
        ]

    def test_unconsumed_groups_are_skipped(self):
        keys = [key for key, _ in grouped(iter([1, 1, 2, 3, 3]), lambda r: r)]
        assert keys == [1, 2, 3]


# ---------------------------------------------------------------------------
# distinct
# ---------------------------------------------------------------------------


class TestDistinct:
    def test_matches_sorted_set(self):
        data = int_corpus()
        assert list(small_engine().distinct(data)) == sorted(set(data))

    def test_report_counts(self):
        data = [3, 1, 3, 3, 2]
        engine = small_engine()
        out = list(engine.distinct(data))
        report = engine.operator_report
        assert out == [1, 2, 3]
        assert (report.rows_in, report.rows_out, report.groups) == (5, 3, 3)
        assert report.operator == "distinct"

    def test_by_key_keeps_first_row_per_key(self):
        fmt = resolve_format("csv", key=0)
        rows = ["a,2", "a,1", "b,9"]
        engine = small_engine(fmt)
        out = list(engine.distinct([fmt.decode(r) for r in rows], by="key"))
        # First record in (key, row) order: "a,1" beats "a,2".
        assert [fmt.encode(r) for r in out] == ["a,1", "b,9"]

    def test_by_record_keeps_distinct_rows_sharing_a_key(self):
        fmt = resolve_format("csv", key=0)
        rows = ["a,2", "a,1", "a,1"]
        engine = small_engine(fmt)
        out = list(engine.distinct([fmt.decode(r) for r in rows]))
        assert [fmt.encode(r) for r in out] == ["a,1", "a,2"]

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="by must be one of"):
            Distinct(small_engine(), by="hash")

    def test_in_memory_vs_spilled_identical(self):
        data = int_corpus()
        spilled = list(small_engine(memory=16).distinct(list(data)))
        in_memory = list(small_engine(memory=100_000).distinct(list(data)))
        assert spilled == in_memory

    def test_serial_vs_parallel_identical(self):
        data = int_corpus(600)
        serial = list(small_engine().distinct(list(data)))
        parallel = list(small_engine(workers=2).distinct(list(data)))
        assert serial == parallel

    def test_empty_input(self):
        engine = small_engine()
        assert list(engine.distinct([])) == []
        assert engine.operator_report.rows_in == 0

    def test_abandoned_stream_cleans_up_and_reports(self, tmp_path):
        engine = SortEngine(
            GeneratorSpec("lss", 16), tmp_dir=str(tmp_path)
        )
        stream = engine.distinct(iter(int_corpus(500)))
        next(stream)
        stream.close()
        report = engine.operator_report
        assert report.rows_in == 500
        assert report.rows_out == 1
        # The engine's spill directory is gone despite early abandon.
        assert not any(tmp_path.iterdir())

    def test_executed_plan_reported_for_small_input(self):
        engine = small_engine(memory=1_000)
        op = Distinct(engine)
        list(op.run(iter([3, 1, 2])))  # unknown size; probe fits memory
        assert op.plan.mode == "in_memory"
        assert op.plan.sort_plan.mode == "in_memory"


# ---------------------------------------------------------------------------
# group-by aggregate
# ---------------------------------------------------------------------------


def dict_aggregate(rows, aggregates):
    """Oracle: fold (key, value) pairs through a plain dict."""
    groups = {}
    for key, value in rows:
        groups.setdefault(key, []).append(value)
    out = []
    for key in sorted(groups):
        values = groups[key]
        fields = [key]
        for aggregate in aggregates:
            if aggregate == "count":
                fields.append(str(len(values)))
            elif aggregate == "sum":
                fields.append(str(sum(values)))
            elif aggregate == "min":
                fields.append(str(min(values)))
            elif aggregate == "max":
                fields.append(str(max(values)))
            else:
                fields.append(repr(sum(values) / len(values)))
        out.append(",".join(fields))
    return out


class TestGroupByAggregate:
    def test_all_aggregates_against_dict_oracle(self):
        fmt, records = csv_corpus()
        pairs = [
            (r[1].split(",")[0], int(r[1].split(",")[1])) for r in records
        ]
        engine = small_engine(fmt)
        got = list(engine.aggregate(records, AGGREGATES, value_column=1))
        assert got == dict_aggregate(pairs, AGGREGATES)

    def test_scalar_format_aggregates_itself(self):
        engine = small_engine()
        got = list(engine.aggregate([5, 5, 2, 5], ("count", "sum")))
        assert got == ["2,1,2", "5,3,15"]

    def test_min_max_survive_mixed_numeric_text_values(self):
        fmt = resolve_format("csv", key=0)
        rows = ["a,5", "a,xyz", "a,-3", "a,abc"]
        engine = small_engine(fmt)
        got = list(
            engine.aggregate(
                [fmt.decode(r) for r in rows], ("min", "max"), value_column=1
            )
        )
        # Numbers rank before text: min is -3, max is the largest text.
        assert got == ["a,-3,xyz"]

    def test_sum_over_text_value_raises(self):
        fmt = resolve_format("csv", key=0)
        engine = small_engine(fmt)
        with pytest.raises(ValueError, match="needs numeric values"):
            list(
                engine.aggregate(
                    [fmt.decode("a,oops")], ("sum",), value_column=1
                )
            )

    def test_value_column_required_for_delimited_sum(self):
        fmt = resolve_format("csv", key=0)
        with pytest.raises(ValueError, match="value_column"):
            GroupByAggregate(small_engine(fmt), aggregates=("sum",))

    def test_value_column_rejected_for_scalars(self):
        with pytest.raises(ValueError, match="only applies to delimited"):
            GroupByAggregate(small_engine(), value_column=1)

    def test_unknown_aggregate_rejected(self):
        with pytest.raises(ValueError, match="unknown aggregate"):
            GroupByAggregate(small_engine(), aggregates=("median",))

    def test_missing_value_column_raises_cleanly(self):
        fmt = resolve_format("csv", key=0)
        engine = small_engine(fmt)
        with pytest.raises(ValueError, match="do not exist"):
            list(
                engine.aggregate(
                    [fmt.decode("a,1")], ("sum",), value_column=7
                )
            )

    def test_groups_never_materialise(self):
        """Peak buffered records stay within memory + fan_in * buffer."""
        fmt, records = csv_corpus(6_000, keys=3)  # huge skewed groups
        engine = small_engine(
            fmt, memory=64, fan_in=4, buffer_records=32
        )
        out = list(engine.aggregate(records, ("count", "sum"), value_column=1))
        assert len(out) <= 4
        assert engine.plan.mode == "spill"
        assert engine.max_resident_records <= 64 + 4 * 32

    def test_in_memory_vs_spilled_identical(self):
        fmt, records = csv_corpus()
        spilled = small_engine(fmt, memory=16)
        in_memory = small_engine(fmt, memory=100_000)
        args = (("count", "sum", "avg"),)
        assert list(
            spilled.aggregate(list(records), *args, value_column=1)
        ) == list(in_memory.aggregate(list(records), *args, value_column=1))

    def test_serial_vs_parallel_identical(self):
        fmt, records = csv_corpus(800)
        serial = small_engine(fmt)
        parallel = small_engine(fmt, workers=2)
        assert list(
            serial.aggregate(list(records), ("count",))
        ) == list(parallel.aggregate(list(records), ("count",)))

    def test_empty_input(self):
        fmt = resolve_format("csv", key=0)
        engine = small_engine(fmt)
        assert list(engine.aggregate([], ("count",))) == []


# ---------------------------------------------------------------------------
# sort-merge join
# ---------------------------------------------------------------------------


def join_oracle(left_rows, right_rows):
    """Left-major nested-loop join over csv rows keyed on column 0."""
    out = []
    for left in sorted(left_rows, key=lambda r: (r.split(",")[0], r)):
        left_fields = left.split(",")
        for right in sorted(
            right_rows, key=lambda r: (r.split(",")[0], r)
        ):
            right_fields = right.split(",")
            if left_fields[0] == right_fields[0]:
                out.append(
                    ",".join(left_fields + right_fields[1:])
                )
    return out


def join_corpus(n=400, keys=30, seed=17):
    rng = random.Random(seed)
    left = [
        f"k{rng.randint(0, keys):02d},{rng.randint(0, 999)}"
        for _ in range(n)
    ]
    right = [
        f"k{rng.randint(0, keys):02d},r{rng.randint(0, 999)}"
        for _ in range(n)
    ]
    return left, right


class TestSortMergeJoin:
    def run_join(self, left_rows, right_rows, memory=MEMORY, **kwargs):
        fmt = resolve_format("csv", key=0)
        engine = small_engine(fmt, memory=memory)
        out = list(
            engine.join(
                [fmt.decode(r) for r in left_rows],
                [fmt.decode(r) for r in right_rows],
                **kwargs,
            )
        )
        return out, engine

    def test_matches_nested_loop_oracle(self):
        left, right = join_corpus()
        got, _ = self.run_join(left, right)
        assert got == join_oracle(left, right)

    def test_duplicate_keys_cross_product(self):
        got, engine = self.run_join(
            ["a,1", "a,2"], ["a,x", "a,y", "a,z"]
        )
        assert got == [
            "a,1,x", "a,1,y", "a,1,z",
            "a,2,x", "a,2,y", "a,2,z",
        ]
        report = engine.operator_report
        assert report.matches == 6
        assert report.groups == 1
        assert report.rows_in == 5

    def test_skew_fallback_spills_loudly(self, capsys):
        left = ["hot,%d" % i for i in range(4)] + ["cold,0"]
        right = ["hot,r%03d" % i for i in range(50)] + ["cold,r0"]
        got, engine = self.run_join(left, right, buffer_limit=8)
        assert got == join_oracle(left, right)
        report = engine.operator_report
        assert report.skew_spills == 1
        assert "spilling" in capsys.readouterr().err

    def test_checksummed_skew_spill_round_trips(self):
        # --checksum must cover the join's own skew spill file too.
        fmt = resolve_format("csv", key=0)
        left_engine = SortEngine(
            GeneratorSpec("lss", MEMORY), record_format=fmt, checksum=True
        )
        left = ["k,%d" % i for i in range(3)]
        right = ["k,r%03d" % i for i in range(50)]
        got = list(
            left_engine.join(
                [fmt.decode(r) for r in left],
                [fmt.decode(r) for r in right],
                right_format=resolve_format("csv", key=0),
                buffer_limit=8,
            )
        )
        assert left_engine.operator_report.skew_spills == 1
        assert got == join_oracle(left, right)

    def test_skewed_output_identical_to_unspilled(self):
        left, right = join_corpus(200, keys=2)  # massive duplicate groups
        spilled, engine = self.run_join(left, right, buffer_limit=4)
        assert engine.operator_report.skew_spills > 0
        plain, _ = self.run_join(left, right)
        assert spilled == plain

    def test_scalar_join_is_intersection_with_multiplicity(self):
        engine = small_engine()
        got = list(engine.join([3, 1, 3, 9], [3, 2, 9, 9]))
        assert got == ["3", "3", "9", "9"]

    def test_mismatched_key_kinds_rejected(self):
        with pytest.raises(ValueError, match="cannot join"):
            SortMergeJoin(small_engine(INT), small_engine(STR))

    def test_mismatched_key_arity_rejected(self):
        left = small_engine(resolve_format("csv", key=(0, 1)))
        right = small_engine(resolve_format("csv", key=0))
        with pytest.raises(ValueError, match="arities differ"):
            SortMergeJoin(left, right)

    def test_same_engine_rejected(self):
        engine = small_engine(resolve_format("csv", key=0))
        with pytest.raises(ValueError, match="separate engines"):
            SortMergeJoin(engine, engine)

    def test_differing_key_columns_per_side(self):
        left_fmt = resolve_format("csv", key=0)
        right_fmt = resolve_format("csv", key=1)
        engine = small_engine(left_fmt)
        got = list(
            engine.join(
                [left_fmt.decode("a,1")],
                [right_fmt.decode("zzz,a")],
                right_format=right_fmt,
            )
        )
        assert got == ["a,1,zzz"]

    def test_in_memory_vs_spilled_identical(self):
        left, right = join_corpus()
        spilled, _ = self.run_join(left, right, memory=8)
        in_memory, _ = self.run_join(left, right, memory=100_000)
        assert spilled == in_memory

    def test_serial_vs_parallel_identical(self):
        left, right = join_corpus()
        serial, _ = self.run_join(left, right)
        fmt = resolve_format("csv", key=0)
        parallel_engine = small_engine(fmt, workers=2)
        parallel = list(
            parallel_engine.join(
                [fmt.decode(r) for r in left],
                [fmt.decode(r) for r in right],
            )
        )
        assert serial == parallel

    def test_disjoint_keys_join_empty(self):
        got, engine = self.run_join(["a,1"], ["b,2"])
        assert got == []
        assert engine.operator_report.matches == 0

    def test_empty_sides(self):
        assert self.run_join([], ["a,1"])[0] == []
        assert self.run_join(["a,1"], [])[0] == []
        assert self.run_join([], [])[0] == []

    def test_plan_reflects_wider_side(self):
        # Tiny left, spilling right: the reported plan must not claim
        # the whole join ran in memory.
        left = ["a,1"]
        right = [f"k{i:04d},{i}" for i in range(2_000)] + ["a,x"]
        got, engine = self.run_join(left, right, memory=100)
        assert got == ["a,1,x"]
        op = engine._last_operator
        assert op.plan.mode == "sort"


# ---------------------------------------------------------------------------
# top-k
# ---------------------------------------------------------------------------


class TestTopK:
    def test_matches_sorted_head(self):
        data = int_corpus()
        engine = small_engine(memory=1_000)
        assert list(engine.topk(data, 25)) == sorted(data)[:25]

    def test_heap_short_circuit_is_planned(self):
        engine = small_engine(memory=1_000)
        op = TopK(engine, 10)
        out = list(op.run(iter(int_corpus(500))))
        assert op.plan.mode == "heap"
        assert "HEAP" in op.report.algorithm
        assert len(out) == 10

    def test_heap_vs_sorted_path_identical(self):
        data = int_corpus()
        heap_engine = small_engine(memory=1_000)
        sort_engine = small_engine(memory=16)
        k = 200
        heap_out = list(heap_engine.topk(list(data), k))
        sort_out = list(sort_engine.topk(list(data), k))
        assert heap_out == sort_out == sorted(data)[:k]

    def test_serial_vs_parallel_identical(self):
        data = int_corpus(800)
        serial = list(small_engine(memory=32).topk(list(data), 100))
        parallel = list(
            small_engine(memory=32, workers=2).topk(list(data), 100)
        )
        assert serial == parallel

    def test_k_larger_than_input(self):
        data = [3, 1, 2]
        assert list(small_engine().topk(data, 100)) == [1, 2, 3]

    def test_k_zero(self):
        engine = small_engine()
        assert list(engine.topk([5, 1], 0)) == []
        assert engine.operator_report.rows_in == 2

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError, match="k must be >= 0"):
            TopK(small_engine(), -1)

    def test_sorted_path_reports_rows(self):
        engine = small_engine(memory=16)
        out = list(engine.topk(int_corpus(500), 40))
        report = engine.operator_report
        assert len(out) == 40
        assert report.rows_in == 500
        assert report.rows_out == 40
        # The truncated sort still surfaces its run-phase stats.
        assert report.records == 500
        assert report.runs > 0
        assert report.run_phase.cpu_ops > 0

    def test_plan_is_operator_plan(self):
        engine = small_engine()
        op = TopK(engine, 5)
        list(op.run([1, 2, 3]))
        assert isinstance(op.plan, OperatorPlan)

    def test_heap_path_stable_for_equal_unequal_encodings(self):
        # 0.0 == -0.0 but repr differs: the heap path must keep the
        # stable-sort order (input order among equals) or the two
        # paths stop being byte-identical.
        from repro.core.records import FLOAT

        data = [0.0, -0.0, 1.0, -0.0, 0.0]
        heap_out = list(small_engine(FLOAT, memory=100).topk(list(data), 4))
        sort_out = list(small_engine(FLOAT, memory=2).topk(list(data), 4))
        want = sorted(data)[:4]
        assert [repr(v) for v in heap_out] == [repr(v) for v in want]
        assert [repr(v) for v in sort_out] == [repr(v) for v in want]
