"""Tests for the victim buffer (Section 4.3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.victim_buffer import VictimBuffer, VictimPhase, largest_gap


class TestLargestGap:
    def test_paper_example(self):
        # Section 4.5: victim = {39, 40, 50, 51}; largest gap (40, 50).
        split, low, high = largest_gap([39, 40, 50, 51])
        assert (low, high) == (40, 50)
        assert split == 2

    def test_needs_two_values(self):
        with pytest.raises(ValueError):
            largest_gap([1])

    def test_ties_take_first(self):
        split, low, high = largest_gap([0, 10, 20])
        assert (low, high) == (0, 10)

    def test_duplicates(self):
        split, low, high = largest_gap([5, 5, 9])
        assert (low, high) == (5, 9)


class TestPhases:
    def test_disabled_when_capacity_zero(self):
        victim = VictimBuffer(0)
        assert victim.phase is VictimPhase.DISABLED
        assert not victim.fits(5)

    def test_initial_fill_then_active(self):
        victim = VictimBuffer(4)
        assert victim.phase is VictimPhase.INITIAL_FILL
        for value in (39, 40, 50, 51):
            victim.add_initial(value)
        to3, to2 = victim.flush_initial()
        assert victim.phase is VictimPhase.ACTIVE
        assert to3 == [39, 40]
        assert to2 == [51, 50]  # descending for stream 2
        assert victim.valid_range == (40, 50)

    def test_fits_only_inside_range(self):
        victim = VictimBuffer(4)
        for value in (39, 40, 50, 51):
            victim.add_initial(value)
        victim.flush_initial()
        assert victim.fits(44)
        assert victim.fits(40)  # inclusive bounds
        assert victim.fits(50)
        assert not victim.fits(39)
        assert not victim.fits(51)

    def test_no_fit_during_initial_fill(self):
        victim = VictimBuffer(4)
        victim.add_initial(5)
        assert not victim.fits(5)

    def test_add_initial_in_active_phase_raises(self):
        victim = VictimBuffer(2)
        victim.add_initial(1)
        victim.add_initial(2)
        victim.flush_initial()
        with pytest.raises(RuntimeError):
            victim.add_initial(3)

    def test_start_run_resets(self):
        victim = VictimBuffer(2)
        victim.add_initial(1)
        victim.add_initial(9)
        victim.flush_initial()
        victim.flush_run_end()
        victim.start_run()
        assert victim.phase is VictimPhase.INITIAL_FILL
        assert victim.valid_range is None

    def test_start_run_with_records_raises(self):
        victim = VictimBuffer(2)
        victim.add_initial(1)
        with pytest.raises(RuntimeError):
            victim.start_run()


class TestFlushes:
    def _active_victim(self):
        victim = VictimBuffer(4)
        for value in (0, 1, 99, 100):
            victim.add_initial(value)
        victim.flush_initial()  # range (1, 99)
        return victim

    def test_flush_full_narrows_range(self):
        victim = self._active_victim()
        for value in (10, 20, 60, 70):
            assert victim.fits(value)
            victim.add(value)
        to3, to2 = victim.flush_full()
        assert to3 == [10, 20]
        assert to2 == [70, 60]
        assert victim.valid_range == (20, 60)

    def test_flush_run_end_returns_ascending(self):
        victim = self._active_victim()
        victim.add(50)
        victim.add(30)
        assert victim.flush_run_end() == [30, 50]
        assert len(victim) == 0

    def test_single_record_initial_flush(self):
        victim = VictimBuffer(1)
        victim.add_initial(7)
        to3, to2 = victim.flush_initial()
        assert to3 == [7]
        assert to2 == []
        assert victim.valid_range is None
        assert not victim.fits(7)

    def test_degenerate_no_gap(self):
        victim = VictimBuffer(3)
        for _ in range(3):
            victim.add_initial(5)
        to3, to2 = victim.flush_initial()
        assert to3 + list(reversed(to2)) == [5, 5, 5]

    def test_cpu_ops_accumulate(self):
        victim = self._active_victim()
        assert victim.cpu_ops > 0

    def test_negative_capacity(self):
        with pytest.raises(ValueError):
            VictimBuffer(-1)


@settings(max_examples=150)
@given(st.lists(st.integers(), min_size=2, max_size=50))
def test_flush_parts_straddle_the_gap(values):
    victim = VictimBuffer(len(values))
    for value in values:
        victim.add_initial(value)
    to3, to2 = victim.flush_initial()
    assert to3 == sorted(to3)
    assert to2 == sorted(to2, reverse=True)
    assert sorted(to3 + to2) == sorted(values)
    if to3 and to2:
        assert max(to3) <= min(to2)
        low, high = victim.valid_range
        assert (low, high) == (max(to3), min(to2))


@settings(max_examples=100)
@given(
    st.lists(st.integers(0, 1000), min_size=2, max_size=20),
    st.lists(st.integers(0, 1000), max_size=40),
)
def test_active_phase_accepts_only_in_range(fill, probes):
    victim = VictimBuffer(max(len(fill), 4))
    for value in fill:
        victim.add_initial(value)
    for _ in range(victim.capacity - len(fill)):
        victim.add_initial(fill[-1])
    victim.flush_initial()
    if victim.valid_range is None:
        return
    low, high = victim.valid_range
    for probe in probes:
        if victim.fits(probe):
            assert low <= probe <= high
            victim.add(probe)
            if victim.is_full:
                to3, to2 = victim.flush_full()
                assert all(low <= v <= high for v in to3 + to2)
