"""Property sweep for the order-preserving key codec (ISSUE 7).

Six seeded value distributions — small ints, bignums, uniform floats
with IEEE specials, exponent-spread floats, text with embedded NULs
and non-ASCII, and mixed numeric/text delimited columns — each checked
for the codec's two contracts:

1. **Order isomorphism**: ``memcmp`` order of the encoded bytes equals
   Python's order of the decoded keys, and *equal* keys (including
   ``-0.0`` vs ``0.0`` and ``2`` vs ``2.0`` in a delimited column)
   encode to *identical* bytes — the property every raw-byte heap
   comparison in the binary spill path rests on.
2. **Round trip**: ``decode(encode(k))`` returns the key (by ``==``;
   ``-0.0`` canonicalises to ``0.0``, which is equal).

The sweep is deterministic per master seed so CI is reproducible; set
``REPRO_PROPERTY_SEED`` to explore a different slice of the space.
Assertion messages embed the distribution and derived seed so a
failure reproduces from the log alone.
"""

import math
import os
import random
import zlib

import pytest

from repro.core import keycodec
from repro.core.records import (
    FLOAT,
    INT,
    STR,
    DelimitedFormat,
    denormalize,
    normalize_key,
)

#: Master seed of the sweep; CI pins it, developers can roam.
MASTER_SEED = int(os.environ.get("REPRO_PROPERTY_SEED", "0"))

SAMPLES_PER_CASE = 300


def case_seed(*parts) -> int:
    """Deterministic per-case seed derived from the master seed."""
    text = ":".join(str(part) for part in (MASTER_SEED,) + parts)
    return zlib.crc32(text.encode("utf-8"))


def describe(**kwargs) -> str:
    fields = ", ".join(f"{k}={v!r}" for k, v in kwargs.items())
    return (
        f"failing case [{fields}] — reproduce with "
        f"REPRO_PROPERTY_SEED={MASTER_SEED} pytest tests/test_keycodec.py"
    )


# -- the six distributions ----------------------------------------------------

def _small_ints(rng):
    return [rng.randint(-1000, 1000) for _ in range(SAMPLES_PER_CASE)]


def _big_ints(rng):
    # Cross the 8-byte boundary in both directions: the codec escapes
    # to length-prefixed bignum layouts there.
    return [
        rng.choice([1, -1]) * rng.randint(0, 10 ** rng.randint(0, 40))
        for _ in range(SAMPLES_PER_CASE)
    ]


_FLOAT_SPECIALS = (
    0.0, -0.0, float("inf"), float("-inf"),
    5e-324, -5e-324,            # subnormals
    1.0, -1.0, 2.0 ** 1023, -(2.0 ** 1023),
)


def _uniform_floats(rng):
    values = [rng.uniform(-1e6, 1e6) for _ in range(SAMPLES_PER_CASE)]
    values.extend(_FLOAT_SPECIALS)
    return values


def _exponent_floats(rng):
    return [
        rng.choice([1.0, -1.0])
        * rng.random()
        * 10.0 ** rng.randint(-300, 300)
        for _ in range(SAMPLES_PER_CASE)
    ]


def _texts(rng):
    alphabet = "ab\x00\x01\xff0 ,éλ💾"
    return [
        "".join(rng.choice(alphabet) for _ in range(rng.randint(0, 12)))
        for _ in range(SAMPLES_PER_CASE)
    ]


def _components(rng):
    """Mixed numeric/text ``(rank, value)`` pairs of a delimited column."""
    out = []
    for _ in range(SAMPLES_PER_CASE):
        if rng.random() < 0.5:
            if rng.random() < 0.5:
                value = rng.randint(-10 ** 6, 10 ** 6)
            else:
                value = rng.uniform(-1e4, 1e4)
            if rng.random() < 0.1:
                value = rng.choice(
                    [float("inf"), float("-inf"), 0.0, -0.0, 0]
                )
            out.append((0, value))
        else:
            out.append((1, "".join(
                rng.choice("abc,\x00é") for _ in range(rng.randint(0, 6))
            )))
    return out


DISTRIBUTIONS = {
    "small_ints": (_small_ints, keycodec.encode_int_key,
                   keycodec.decode_int_key),
    "big_ints": (_big_ints, keycodec.encode_int_key,
                 keycodec.decode_int_key),
    "uniform_floats": (_uniform_floats, keycodec.encode_float_key,
                       keycodec.decode_float_key),
    "exponent_floats": (_exponent_floats, keycodec.encode_float_key,
                        keycodec.decode_float_key),
    "texts": (_texts, keycodec.encode_str_key, keycodec.decode_str_key),
    "components": (_components, keycodec.encode_key_component,
                   lambda data: keycodec.decode_key_component(data, 0)[0]),
}


@pytest.mark.parametrize("name", sorted(DISTRIBUTIONS))
def test_normalize_is_order_isomorphic(name):
    make, encode, _decode = DISTRIBUTIONS[name]
    rng = random.Random(case_seed("iso", name))
    values = make(rng)
    encoded = [encode(v) for v in values]
    for _ in range(1000):
        i, j = rng.randrange(len(values)), rng.randrange(len(values))
        a, b, ea, eb = values[i], values[j], encoded[i], encoded[j]
        assert (a < b) == (ea < eb), describe(
            distribution=name, a=a, b=b, ea=ea, eb=eb
        )
        assert (a == b) == (ea == eb), describe(
            distribution=name, a=a, b=b, ea=ea, eb=eb
        )


@pytest.mark.parametrize("name", sorted(DISTRIBUTIONS))
def test_sorting_by_bytes_is_sorting_by_value(name):
    """``sorted(key=encode)`` and ``sorted()`` agree element for element.

    Stability makes this strict: equal keys must encode identically,
    so ties resolve to input order under both sorts.
    """
    make, encode, _decode = DISTRIBUTIONS[name]
    rng = random.Random(case_seed("sort", name))
    values = make(rng)
    by_bytes = sorted(range(len(values)), key=lambda i: encode(values[i]))
    by_value = sorted(range(len(values)), key=lambda i: values[i])
    assert by_bytes == by_value, describe(distribution=name)


@pytest.mark.parametrize("name", sorted(DISTRIBUTIONS))
def test_denormalize_round_trips(name):
    make, encode, decode = DISTRIBUTIONS[name]
    rng = random.Random(case_seed("roundtrip", name))
    for value in make(rng):
        back = decode(encode(value))
        assert back == value, describe(
            distribution=name, value=value, back=back
        )


def test_float_negative_zero_canonicalises():
    assert keycodec.encode_float_key(-0.0) == keycodec.encode_float_key(0.0)
    back = keycodec.decode_float_key(keycodec.encode_float_key(-0.0))
    assert math.copysign(1.0, back) == 1.0


def test_float_nan_is_rejected():
    with pytest.raises(ValueError):
        keycodec.encode_float_key(float("nan"))


def test_multi_column_keys_order_like_tuples():
    rng = random.Random(case_seed("columns"))
    keys = [
        tuple(_components(rng)[0] for _ in range(3))
        for _ in range(SAMPLES_PER_CASE)
    ]
    encoded = [keycodec.encode_column_key(k, 3) for k in keys]
    for _ in range(1000):
        i, j = rng.randrange(len(keys)), rng.randrange(len(keys))
        assert (keys[i] < keys[j]) == (encoded[i] < encoded[j]), describe(
            a=keys[i], b=keys[j]
        )
    for key, data in zip(keys, encoded):
        assert keycodec.decode_column_key(data, 3) == key, describe(key=key)


def test_format_level_normalize_round_trips():
    """The records-module façade agrees with the codec primitives."""
    cases = [
        (INT, -(10 ** 30)),
        (INT, 42),
        (FLOAT, -2.5),
        (FLOAT, float("inf")),
        (STR, "a\x00b"),
        (DelimitedFormat(",", key_column=1), (0, 7)),
        (DelimitedFormat(",", key_column=(0, 1)), ((0, 1.5), (1, "x"))),
    ]
    for fmt, key in cases:
        data = normalize_key(fmt, key)
        assert isinstance(data, bytes)
        assert denormalize(fmt, data) == key, describe(fmt=fmt.name, key=key)
