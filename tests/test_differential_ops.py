"""Differential testing of the operator CLI against coreutils oracles.

* ``distinct`` vs ``LC_ALL=C sort -u`` (str) and ``sort -n -u`` (int,
  canonical encodings so equal keys are byte-identical lines);
* ``join`` vs ``LC_ALL=C join -t,`` over inputs pre-sorted with
  ``LC_ALL=C sort`` — keys are alphanumeric-only so byte order, GNU
  field order and our type-ranked text order all agree;
* ``topk`` vs ``sort | head -k``;
* every operator also against trivial Python ``sorted()``/dict
  oracles, so the suite still verifies semantics when coreutils is
  absent (the GNU comparisons skip, same pattern as
  ``tests/test_differential.py``).
"""

import os
import random
import shutil
import subprocess

import pytest

from _helpers import stress_case, stress_seed
from repro.cli import main

GNU_SORT = shutil.which("sort")
GNU_JOIN = shutil.which("join")

C_ENV = {**os.environ, "LC_ALL": "C"}


def run_cli(argv):
    assert main(argv) == 0, f"CLI failed: {argv}"


def write_lines(path, lines):
    path.write_text("".join(line + "\n" for line in lines))
    return path


def int_lines(n, *seed_parts):
    rng = random.Random(stress_seed("ops-int", n, *seed_parts))
    # Canonical encodings (no +, no leading zeros): equal keys are
    # byte-identical lines, so sort -n -u agrees with record dedup.
    return [str(rng.randint(-500, 500)) for _ in range(n)]


def str_lines(n, *seed_parts):
    rng = random.Random(stress_seed("ops-str", n, *seed_parts))
    alphabet = "abcdefghijklmnopqrstuvwxyz0123456789_-."
    return [
        "".join(rng.choice(alphabet) for _ in range(rng.randint(0, 12)))
        for _ in range(n)
    ]


def join_lines(n, side, *seed_parts):
    """csv rows with alphabetic-only keys (GNU join compares bytes)."""
    rng = random.Random(stress_seed("ops-join", n, side, *seed_parts))
    keys = ["k" + "".join(rng.choice("abcdef") for _ in range(2))
            for _ in range(30)]
    return [
        f"{rng.choice(keys)},{side}{rng.randint(0, 99)},t{rng.randint(0, 9)}"
        for _ in range(n)
    ]


# ---------------------------------------------------------------------------
# distinct vs sort -u
# ---------------------------------------------------------------------------


class TestDistinctDifferential:
    @pytest.mark.parametrize("memory", [16, 4_096])
    def test_python_oracle_int(self, tmp_path, memory):
        lines = int_lines(1_500, memory)
        source = write_lines(tmp_path / "in.txt", lines)
        out = tmp_path / "out.txt"
        run_cli(["distinct", "--memory", str(memory), str(source),
                 "-o", str(out)])
        want = [str(v) for v in sorted({int(line) for line in lines})]
        assert out.read_text().splitlines() == want, stress_case(
            op="distinct", fmt="int", memory=memory
        )

    @pytest.mark.skipif(GNU_SORT is None, reason="GNU sort not installed")
    @pytest.mark.parametrize("fmt,flags", [("int", ["-n"]), ("str", [])])
    def test_gnu_sort_u_oracle(self, tmp_path, fmt, flags):
        lines = int_lines(1_500) if fmt == "int" else str_lines(1_500)
        source = write_lines(tmp_path / "in.txt", lines)
        out = tmp_path / "out.txt"
        argv = ["distinct", "--memory", "64"]
        if fmt != "int":
            argv += ["--format", fmt]
        run_cli(argv + [str(source), "-o", str(out)])
        oracle = subprocess.run(
            [GNU_SORT, *flags, "-u", str(source)],
            capture_output=True, env=C_ENV, check=True,
        )
        assert out.read_bytes() == oracle.stdout, stress_case(
            op="distinct", fmt=fmt
        )


# ---------------------------------------------------------------------------
# join vs coreutils join
# ---------------------------------------------------------------------------


class TestJoinDifferential:
    def make_inputs(self, tmp_path, n=800):
        left = join_lines(n, "l")
        right = join_lines(n, "r")
        return (
            write_lines(tmp_path / "left.csv", left),
            write_lines(tmp_path / "right.csv", right),
        )

    def python_join(self, left_path, right_path):
        def rows(path):
            return sorted(
                path.read_text().splitlines(),
                key=lambda row: (row.split(",")[0], row),
            )

        by_key = {}
        for row in rows(right_path):
            by_key.setdefault(row.split(",")[0], []).append(row)
        out = []
        for row in rows(left_path):
            fields = row.split(",")
            for match in by_key.get(fields[0], ()):
                out.append(",".join(fields + match.split(",")[1:]))
        return out

    def test_python_oracle(self, tmp_path):
        left, right = self.make_inputs(tmp_path)
        out = tmp_path / "out.csv"
        run_cli(["join", "--format", "csv", "--key", "0", "--memory", "64",
                 str(left), str(right), "-o", str(out)])
        assert out.read_text().splitlines() == self.python_join(left, right)

    @pytest.mark.skipif(GNU_JOIN is None or GNU_SORT is None,
                        reason="GNU join/sort not installed")
    def test_gnu_join_oracle(self, tmp_path):
        left, right = self.make_inputs(tmp_path)
        # GNU join needs its inputs pre-sorted; LC_ALL=C byte order on
        # whole lines is key-compatible for alphanumeric keys, and the
        # within-group file order it preserves then equals our
        # (key, row) tie order.
        sorted_left = tmp_path / "left.sorted"
        sorted_right = tmp_path / "right.sorted"
        for source, target in ((left, sorted_left), (right, sorted_right)):
            with open(target, "wb") as handle:
                subprocess.run(
                    [GNU_SORT, str(source)], stdout=handle,
                    env=C_ENV, check=True,
                )
        oracle = subprocess.run(
            [GNU_JOIN, "-t", ",", str(sorted_left), str(sorted_right)],
            capture_output=True, env=C_ENV, check=True,
        )
        out = tmp_path / "out.csv"
        run_cli(["join", "--format", "csv", "--key", "0", "--memory", "64",
                 str(left), str(right), "-o", str(out)])
        assert out.read_bytes() == oracle.stdout, stress_case(op="join")

    @pytest.mark.skipif(GNU_JOIN is None, reason="GNU join not installed")
    def test_gnu_join_oracle_actually_used(self, tmp_path):
        left = write_lines(tmp_path / "l.csv", ["ka,1"])
        right = write_lines(tmp_path / "r.csv", ["ka,2"])
        oracle = subprocess.run(
            [GNU_JOIN, "-t", ",", str(left), str(right)],
            capture_output=True, env=C_ENV, check=True,
        )
        assert oracle.stdout == b"ka,1,2\n"


# ---------------------------------------------------------------------------
# topk vs sort | head
# ---------------------------------------------------------------------------


class TestTopkDifferential:
    @pytest.mark.parametrize("memory,k", [(4_096, 50), (32, 50)])
    def test_python_oracle(self, tmp_path, memory, k):
        lines = int_lines(2_000, memory, k)
        source = write_lines(tmp_path / "in.txt", lines)
        out = tmp_path / "out.txt"
        run_cli(["topk", "-k", str(k), "--memory", str(memory),
                 str(source), "-o", str(out)])
        want = sorted((int(line) for line in lines))[:k]
        got = [int(line) for line in out.read_text().splitlines()]
        assert got == want, stress_case(op="topk", memory=memory, k=k)

    @pytest.mark.skipif(GNU_SORT is None, reason="GNU sort not installed")
    def test_sort_head_oracle(self, tmp_path):
        lines = int_lines(2_000, "head")
        source = write_lines(tmp_path / "in.txt", lines)
        out = tmp_path / "out.txt"
        k = 75
        run_cli(["topk", "-k", str(k), "--memory", "500",
                 str(source), "-o", str(out)])
        oracle = subprocess.run(
            [GNU_SORT, "-n", str(source)],
            capture_output=True, env=C_ENV, check=True,
        )
        head = b"".join(oracle.stdout.splitlines(keepends=True)[:k])
        assert out.read_bytes() == head, stress_case(op="topk")


# ---------------------------------------------------------------------------
# agg vs dict oracle
# ---------------------------------------------------------------------------


class TestAggDifferential:
    def test_dict_oracle(self, tmp_path):
        rng = random.Random(stress_seed("ops-agg"))
        lines = [
            f"g{rng.randint(0, 25):02d},{rng.randint(-50, 50)}"
            for _ in range(1_200)
        ]
        source = write_lines(tmp_path / "in.csv", lines)
        out = tmp_path / "out.csv"
        run_cli(["agg", "--format", "csv", "--key", "0", "--value", "1",
                 "--agg", "count,sum,min,max", "--memory", "32",
                 str(source), "-o", str(out)])
        groups = {}
        for line in lines:
            key, value = line.split(",")
            groups.setdefault(key, []).append(int(value))
        want = [
            f"{key},{len(vals)},{sum(vals)},{min(vals)},{max(vals)}"
            for key, vals in sorted(groups.items())
        ]
        assert out.read_text().splitlines() == want, stress_case(op="agg")
