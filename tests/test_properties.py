"""Property-based correctness harness for the whole sort stack.

A seeded randomized sweep over the full factor space: every input
distribution of Section 5.2 x run-generation algorithm / 2WRS heuristic
pair x memory size x {serial, parallel} execution.  Two properties must
hold for every combination:

1. the output is ascending, and
2. the output is a multiset permutation of the input (nothing lost,
   nothing duplicated, nothing invented).

The sweep is deterministic per master seed so CI is reproducible; set
``REPRO_PROPERTY_SEED`` to explore a different slice of the space.
Every assertion message embeds the full case description (including the
derived seed), so a failure is reproducible from the log alone.
"""

import os
import random
import zlib
from collections import Counter

import pytest

from repro.core.config import GeneratorSpec, TwoWayConfig
from repro.core.heuristics import INPUT_HEURISTICS, OUTPUT_HEURISTICS
from repro.core.records import STR, DelimitedFormat
from repro.engine.planner import SortEngine
from repro.sort.parallel import PartitionedSort
from repro.sort.spill import FileSpillSort
from repro.workloads.generators import DISTRIBUTIONS, make_input

#: Master seed of the sweep; CI pins it, developers can roam.
MASTER_SEED = int(os.environ.get("REPRO_PROPERTY_SEED", "0"))

DISTRIBUTION_NAMES = sorted(DISTRIBUTIONS)
MEMORIES = (16, 64, 257)


def case_seed(*parts) -> int:
    """Deterministic per-case seed derived from the master seed."""
    text = ":".join(str(part) for part in (MASTER_SEED,) + parts)
    return zlib.crc32(text.encode("utf-8"))


def describe(**kwargs) -> str:
    """One-line reproduction recipe embedded in assertion messages."""
    fields = ", ".join(f"{k}={v!r}" for k, v in kwargs.items())
    return (
        f"failing case [{fields}] — reproduce with "
        f"REPRO_PROPERTY_SEED={MASTER_SEED} "
        f"pytest tests/test_properties.py"
    )


def check_sorted_permutation(got, data, **case) -> None:
    """Assert the two properties with a reproducible failure message."""
    assert all(a <= b for a, b in zip(got, got[1:])), (
        "output is not ascending: " + describe(**case)
    )
    assert Counter(got) == Counter(data), (
        "output is not a permutation of the input: " + describe(**case)
    )


def two_way_combos(distribution: str, count: int = 3):
    """A deterministic sample of (input, output) heuristic pairs.

    The full cross product is 6 x 5 = 30 pairs per distribution; a
    seeded sample keeps the sweep fast while rotating coverage whenever
    the master seed changes.
    """
    rng = random.Random(case_seed("combos", distribution))
    pairs = [
        (i, o) for i in sorted(INPUT_HEURISTICS) for o in sorted(OUTPUT_HEURISTICS)
    ]
    return rng.sample(pairs, count)


class TestSerialProperties:
    @pytest.mark.parametrize("distribution", DISTRIBUTION_NAMES)
    @pytest.mark.parametrize("memory", MEMORIES)
    def test_2wrs_heuristic_sweep(self, distribution, memory, tmp_path):
        for input_heuristic, output_heuristic in two_way_combos(distribution):
            seed = case_seed(distribution, memory, input_heuristic,
                             output_heuristic)
            data = list(
                make_input(distribution, 1_200, seed=seed % 2**31)
            )
            config = TwoWayConfig(
                input_heuristic=input_heuristic,
                output_heuristic=output_heuristic,
                seed=seed % 2**31,
            )
            sorter = FileSpillSort(
                GeneratorSpec("2wrs", memory, config).build(),
                fan_in=4,
                tmp_dir=str(tmp_path),
            )
            got = list(sorter.sort(iter(data)))
            check_sorted_permutation(
                got,
                data,
                distribution=distribution,
                memory=memory,
                input_heuristic=input_heuristic,
                output_heuristic=output_heuristic,
                seed=seed % 2**31,
            )

    @pytest.mark.parametrize("distribution", DISTRIBUTION_NAMES)
    @pytest.mark.parametrize("algorithm", ["rs", "lss", "brs"])
    def test_classic_algorithms(self, distribution, algorithm, tmp_path):
        seed = case_seed(distribution, algorithm)
        rng = random.Random(seed)
        memory = rng.choice(MEMORIES)
        n = rng.randrange(500, 2_500)
        data = list(make_input(distribution, n, seed=seed % 2**31))
        sorter = FileSpillSort(
            GeneratorSpec(algorithm, memory).build(),
            fan_in=rng.choice((2, 4, 10)),
            tmp_dir=str(tmp_path),
        )
        got = list(sorter.sort(iter(data)))
        check_sorted_permutation(
            got,
            data,
            distribution=distribution,
            algorithm=algorithm,
            memory=memory,
            records=n,
            seed=seed % 2**31,
        )


class TestParallelProperties:
    @pytest.mark.parametrize("distribution", DISTRIBUTION_NAMES)
    def test_partitioned_sort(self, distribution, tmp_path):
        seed = case_seed("parallel", distribution)
        rng = random.Random(seed)
        partition = rng.choice(("hash", "range"))
        algorithm = rng.choice(("rs", "lss", "brs", "2wrs"))
        memory = rng.choice((200, 500))
        n = rng.randrange(2_000, 6_000)
        data = list(make_input(distribution, n, seed=seed % 2**31))
        sorter = PartitionedSort(
            GeneratorSpec(algorithm, memory),
            workers=2,
            partition=partition,
            sample_records=512,
            tmp_dir=str(tmp_path),
        )
        got = list(sorter.sort(iter(data)))
        check_sorted_permutation(
            got,
            data,
            mode="parallel",
            distribution=distribution,
            algorithm=algorithm,
            partition=partition,
            memory=memory,
            records=n,
            seed=seed % 2**31,
        )
        assert sum(sorter.shard_records) == n, describe(
            mode="parallel", distribution=distribution, seed=seed % 2**31
        )


class TestFormatProperties:
    """The sweep extended to the str and delimited-row record formats.

    The int distributions of Section 5.2 are mapped into the other
    record shapes (zero-padded strings preserve the distribution's
    order structure; rows carry the value in a key column), so every
    distribution's clusteredness is exercised under every format.
    """

    @pytest.mark.parametrize("distribution", DISTRIBUTION_NAMES)
    def test_str_format(self, distribution, tmp_path):
        seed = case_seed("str", distribution)
        rng = random.Random(seed)
        algorithm = rng.choice(("rs", "lss", "brs", "2wrs"))
        memory = rng.choice(MEMORIES)
        n = rng.randrange(800, 2_400)
        data = [
            f"k{value & 0x7FFFFFFF:010d}"
            for value in make_input(distribution, n, seed=seed % 2**31)
        ]
        engine = SortEngine(
            GeneratorSpec(algorithm, memory),
            record_format=STR,
            fan_in=rng.choice((2, 4, 10)),
            reading=rng.choice(("naive", "forecasting", "double_buffering")),
            tmp_dir=str(tmp_path),
        )
        got = list(engine.sort(iter(data)))
        check_sorted_permutation(
            got,
            data,
            mode="str-format",
            distribution=distribution,
            algorithm=algorithm,
            memory=memory,
            records=n,
            seed=seed % 2**31,
        )

    @pytest.mark.parametrize("distribution", DISTRIBUTION_NAMES)
    def test_delimited_format(self, distribution, tmp_path):
        seed = case_seed("delimited", distribution)
        rng = random.Random(seed)
        fmt = DelimitedFormat(",", 1)
        workers = rng.choice((1, 2))
        memory = rng.choice((200, 500))
        n = rng.randrange(800, 2_400)
        data = [
            fmt.decode(f"row{index:05d},{value},p{value % 7}")
            for index, value in enumerate(
                make_input(distribution, n, seed=seed % 2**31)
            )
        ]
        engine = SortEngine(
            GeneratorSpec(rng.choice(("rs", "lss", "2wrs")), memory),
            record_format=fmt,
            workers=workers,
            sample_records=256,
            tmp_dir=str(tmp_path),
        )
        got = list(engine.sort(iter(data)))
        check_sorted_permutation(
            got,
            data,
            mode="delimited-format",
            distribution=distribution,
            workers=workers,
            memory=memory,
            records=n,
            seed=seed % 2**31,
        )
        # The encoded output preserves every row byte-for-byte.
        assert sorted(fmt.encode(r) for r in got) == sorted(
            fmt.encode(r) for r in data
        ), describe(mode="delimited-format", distribution=distribution,
                    seed=seed % 2**31)
