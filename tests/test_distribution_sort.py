"""Tests for bucket sort and external distribution sort (Section 2.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.iosim.disk import DiskGeometry, DiskModel
from repro.iosim.files import SimulatedFileSystem
from repro.sort.distribution import (
    ExternalDistributionSort,
    bucket_index,
    bucket_sort,
    uniform_bucket_ranges,
)
from repro.workloads.generators import random_input


class TestBucketRanges:
    def test_paper_example_five_buckets(self):
        # Figure 2.4: records 1..50 into five buckets of width 10.
        ranges = uniform_bucket_ranges(1, 50, 5)
        assert len(ranges) == 5
        assert ranges[0][0] == 1
        assert ranges[-1][1] == 50

    def test_invalid_bucket_count(self):
        with pytest.raises(ValueError):
            uniform_bucket_ranges(0, 10, 0)

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            uniform_bucket_ranges(10, 0, 2)

    def test_bucket_index_bounds(self):
        assert bucket_index(0, 0, 100, 10) == 0
        assert bucket_index(100, 0, 100, 10) == 9
        assert bucket_index(55, 0, 100, 10) == 5

    def test_bucket_index_degenerate_range(self):
        assert bucket_index(5, 5, 5, 10) == 0


class TestBucketSort:
    def test_paper_example(self):
        # Section 2.2's worked example.
        data = [37, 2, 45, 22, 17, 12, 18, 23, 25, 42]
        assert bucket_sort(data, num_buckets=5) == [
            2, 12, 17, 18, 22, 23, 25, 37, 42, 45,
        ]

    def test_empty_and_single(self):
        assert bucket_sort([]) == []
        assert bucket_sort([7]) == [7]

    def test_custom_inner_sort(self):
        data = [3, 1, 2]
        assert bucket_sort(data, num_buckets=2, sort=sorted) == [1, 2, 3]

    def test_clustered_values(self):
        data = [100] * 50 + [1]
        assert bucket_sort(data, num_buckets=4) == sorted(data)


def small_fs():
    return SimulatedFileSystem(DiskModel(geometry=DiskGeometry(page_records=32)))


class TestExternalDistributionSort:
    def test_sorts_random_input(self):
        data = list(random_input(3_000, seed=1))
        sorter = ExternalDistributionSort(
            fs=small_fs(), memory_capacity=200, num_buckets=8
        )
        out = sorter.sort(data)
        assert out.read_all() == sorted(data)

    def test_small_input_sorted_internally(self):
        sorter = ExternalDistributionSort(fs=small_fs(), memory_capacity=100)
        out = sorter.sort([5, 1, 3])
        assert out.read_all() == [1, 3, 5]

    def test_all_equal_keys(self):
        sorter = ExternalDistributionSort(
            fs=small_fs(), memory_capacity=10, num_buckets=4
        )
        out = sorter.sort([7] * 100)
        assert out.read_all() == [7] * 100

    def test_clustered_data_recurses(self):
        # Heavy clustering sends almost everything to one bucket.
        data = [10] * 500 + list(range(500))
        sorter = ExternalDistributionSort(
            fs=small_fs(), memory_capacity=50, num_buckets=4
        )
        out = sorter.sort(data)
        assert out.read_all() == sorted(data)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ExternalDistributionSort(memory_capacity=0)
        with pytest.raises(ValueError):
            ExternalDistributionSort(num_buckets=1)

    def test_charges_io(self):
        fs = small_fs()
        sorter = ExternalDistributionSort(fs=fs, memory_capacity=100)
        sorter.sort(list(random_input(2_000, seed=2)))
        assert fs.disk.elapsed > 0


@settings(max_examples=80, deadline=None)
@given(st.lists(st.integers(-10_000, 10_000), max_size=400))
def test_bucket_sort_equals_sorted(data):
    assert bucket_sort(data, num_buckets=7) == sorted(data)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.integers(-1000, 1000), max_size=300),
    st.integers(5, 60),
    st.integers(2, 8),
)
def test_external_distribution_sort_correct(data, memory, buckets):
    sorter = ExternalDistributionSort(
        fs=small_fs(), memory_capacity=memory, num_buckets=buckets
    )
    assert sorter.sort(data).read_all() == sorted(data)
