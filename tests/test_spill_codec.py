"""Compressed + front-coded spill blocks (DESIGN.md §15).

Codec-layer units (varint framing, front coding, compress/decompress
round-trips), the RBLC block framing through ``BlockWriter`` /
``read_blocks`` including every corruption class, the raw-vs-on-disk
byte accounting that feeds ``SortReport``, the codec key in both
resume fingerprints, and the planner's codec decision row.
"""

import struct

import pytest

from repro.core.config import GeneratorSpec
from repro.core.records import INT, binary_format, resolve_format
from repro.engine.block_io import (
    COMPRESSED_BLOCK_MAGIC,
    BlockWriter,
    iter_records,
    open_run,
    read_blocks,
    write_block_file,
    write_sequence,
)
from repro.engine.errors import CorruptBlockError
from repro.engine.planner import (
    SortEngine,
    _resolve_codec,
    plan_sort,
)
from repro.engine.resilience import ResumableSpillSort, SortJournal
from repro.engine.spill_codec import (
    AUTO_CODEC,
    SPILL_CODECS,
    SpillCodecError,
    compress_body,
    decompress_body,
    front_decode,
    front_encode,
    validate_codec,
)
from repro.ops.base import report_from_sort
from repro.sort.external import SortReport
from repro.sort.parallel import PartitionedSort
from repro.sort.spill import FileSpillSort

REAL_CODECS = [c for c in SPILL_CODECS if c != "none"]

_HEADER_SIZE = struct.calcsize(">4sBIIII")


# ---------------------------------------------------------------------------
# codec primitives
# ---------------------------------------------------------------------------


class TestValidateCodec:
    def test_accepts_every_registered_codec(self):
        for codec in SPILL_CODECS:
            assert validate_codec(codec) == codec

    def test_rejects_unknown(self):
        with pytest.raises(ValueError):
            validate_codec("snappy")

    def test_auto_is_opt_in(self):
        with pytest.raises(ValueError):
            validate_codec(AUTO_CODEC)
        assert validate_codec(AUTO_CODEC, allow_auto=True) == AUTO_CODEC


class TestFrontCoding:
    def test_round_trip_sorted_lines(self):
        parts = [f"key{i:06d},payload\n".encode() for i in range(500)]
        encoded = front_encode(parts)
        assert front_decode(encoded, len(parts)) == b"".join(parts)
        # 500 lines sharing "key00..." prefixes must shrink.
        assert len(encoded) < len(b"".join(parts))

    def test_round_trip_unsorted_still_correct(self):
        parts = [b"zebra\n", b"apple\n", b"zoo\n", b"ant\n"]
        encoded = front_encode(parts)
        assert front_decode(encoded, len(parts)) == b"".join(parts)

    def test_empty_and_single(self):
        assert front_decode(front_encode([]), 0) == b""
        assert front_decode(front_encode([b"only\n"]), 1) == b"only\n"

    def test_identical_parts_collapse(self):
        parts = [b"same\n"] * 100
        encoded = front_encode(parts)
        # Each repeat costs two varints and zero suffix bytes.
        assert len(encoded) < len(b"same\n") + 3 * 100

    def test_truncated_stream_raises(self):
        encoded = front_encode([b"abc\n", b"abd\n"])
        with pytest.raises(SpillCodecError):
            front_decode(encoded[:-2], 2)

    def test_trailing_garbage_raises(self):
        encoded = front_encode([b"abc\n"])
        with pytest.raises(SpillCodecError):
            front_decode(encoded + b"\x00", 1)

    def test_count_mismatch_raises(self):
        encoded = front_encode([b"abc\n", b"abd\n"])
        with pytest.raises(SpillCodecError):
            front_decode(encoded, 3)


class TestCompressBody:
    BODY = b"".join(f"{i:08d}\n".encode() for i in range(2000))
    PARTS = tuple(f"{i:08d}\n".encode() for i in range(2000))

    @pytest.mark.parametrize("codec", REAL_CODECS)
    def test_round_trip(self, codec):
        stored = compress_body(codec, self.BODY, self.PARTS)
        raw = decompress_body(codec, stored, len(self.BODY), len(self.PARTS))
        assert raw == self.BODY

    @pytest.mark.parametrize("codec", ["zlib", "lzma", "front+zlib"])
    def test_byte_compressors_shrink(self, codec):
        stored = compress_body(codec, self.BODY, self.PARTS)
        assert len(stored) < len(self.BODY) // 2

    def test_corrupt_zlib_stream_raises_codec_error(self):
        stored = bytearray(compress_body("zlib", self.BODY, ()))
        stored[4] ^= 0xFF
        with pytest.raises(SpillCodecError):
            decompress_body("zlib", bytes(stored), len(self.BODY), 2000)

    def test_raw_length_mismatch_raises(self):
        stored = compress_body("zlib", self.BODY, ())
        with pytest.raises(SpillCodecError):
            decompress_body("zlib", stored, len(self.BODY) + 1, 2000)


# ---------------------------------------------------------------------------
# RBLC framing through BlockWriter / read_blocks
# ---------------------------------------------------------------------------


def roundtrip(tmp_path, fmt, records, codec, block_records=64):
    path = str(tmp_path / f"run-{codec.replace('+', '_')}.dat")
    write_sequence(path, records, fmt, block_records, codec=codec)
    with open_run(path, "r", fmt, codec=codec) as handle:
        return path, list(
            iter_records(handle, fmt, block_records, codec=codec)
        )


class TestCompressedBlockIO:
    @pytest.mark.parametrize("codec", REAL_CODECS)
    def test_text_round_trip(self, tmp_path, codec):
        records = [(i * 7919) % 4001 for i in range(1000)]
        _, out = roundtrip(tmp_path, INT, records, codec)
        assert out == records

    @pytest.mark.parametrize("codec", REAL_CODECS)
    def test_binary_round_trip(self, tmp_path, codec):
        fmt = binary_format(INT)
        records = [fmt.decode(str((i * 613) % 997)) for i in range(1000)]
        _, out = roundtrip(tmp_path, fmt, records, codec)
        assert out == records

    @pytest.mark.parametrize("codec", REAL_CODECS)
    def test_csv_round_trip(self, tmp_path, codec):
        fmt = resolve_format("csv", key=1)
        records = [fmt.decode(f"r{i},{i % 13},x") for i in range(300)]
        _, out = roundtrip(tmp_path, fmt, records, codec)
        assert out == records

    def test_front_coding_shrinks_sorted_binary_runs(self, tmp_path):
        """The tentpole's point: PR-7 order-preserving key bytes give
        sorted runs long shared prefixes for front coding to delta."""
        fmt = binary_format(INT)
        records = sorted(
            (fmt.decode(str(1_000_000 + i)) for i in range(4096)),
            key=lambda r: r[0],
        )
        plain = str(tmp_path / "plain.dat")
        write_sequence(plain, records, fmt, 512)
        front = str(tmp_path / "front.dat")
        write_sequence(front, records, fmt, 512, codec="front")
        import os

        assert os.path.getsize(front) < os.path.getsize(plain) * 0.75

    def test_mixed_codec_read_is_corrupt_not_garbage(self, tmp_path):
        path, _ = roundtrip(tmp_path, INT, list(range(100)), "zlib")
        with open_run(path, "r", INT, codec="lzma") as handle:
            with pytest.raises(CorruptBlockError) as info:
                list(read_blocks(handle, INT, 64, codec="lzma"))
        assert info.value.path == path
        assert "codec" in str(info.value)

    def test_plain_reader_on_compressed_file_fails_loudly(self, tmp_path):
        path, _ = roundtrip(tmp_path, INT, list(range(100)), "zlib")
        with open_run(path, "r", INT) as handle:
            with pytest.raises(Exception):
                list(iter_records(handle, INT, 64))


class TestCompressedCorruption:
    def corrupt(self, tmp_path, codec, mutate):
        records = [(i * 17) % 301 for i in range(500)]
        path = str(tmp_path / "run-corrupt.dat")
        write_sequence(path, records, INT, 64, codec=codec)
        data = bytearray(open(path, "rb").read())
        mutate(data)
        with open(path, "wb") as handle:
            handle.write(bytes(data))
        with open_run(path, "r", INT, codec=codec) as handle:
            with pytest.raises(CorruptBlockError) as info:
                list(read_blocks(handle, INT, 64, codec=codec))
        return path, info.value

    @pytest.mark.parametrize("codec", REAL_CODECS)
    def test_bit_flip_in_body_names_file_block_offset(self, tmp_path, codec):
        def flip(data):
            data[_HEADER_SIZE + 3] ^= 0x10  # inside block 0's stored body

        path, err = self.corrupt(tmp_path, codec, flip)
        assert err.path == path
        assert err.block_index == 0
        assert err.offset == 0

    @pytest.mark.parametrize("codec", ["zlib", "front"])
    def test_bit_flip_in_later_block(self, tmp_path, codec):
        def flip(data):
            # Past block 0: stored_len lives at bytes 13..17 of the
            # header (>4sBIIII: magic, codec, count, raw, stored, crc).
            stored0 = struct.unpack(">I", data[13:17])[0]
            data[_HEADER_SIZE + stored0 + _HEADER_SIZE + 1] ^= 0x01

        path, err = self.corrupt(tmp_path, codec, flip)
        assert err.block_index == 1
        assert err.offset > 0

    def test_truncated_stored_body(self, tmp_path):
        path, err = self.corrupt(
            tmp_path, "zlib", lambda data: data.__delitem__(
                slice(len(data) - 5, len(data))
            )
        )
        assert "truncated" in err.reason

    def test_truncated_header(self, tmp_path):
        def chop(data):
            del data[len(data) - (_HEADER_SIZE + 40) + 6:]

        _, err = self.corrupt(tmp_path, "zlib", chop)
        assert "header" in err.reason

    def test_bad_magic(self, tmp_path):
        def stomp(data):
            data[0:4] = b"XXXX"

        _, err = self.corrupt(tmp_path, "front+zlib", stomp)
        assert err.block_index == 0

    def test_magic_constant_is_distinct_from_binary_framing(self):
        assert COMPRESSED_BLOCK_MAGIC == b"RBLC"


# ---------------------------------------------------------------------------
# byte accounting
# ---------------------------------------------------------------------------


class _Session:
    def __init__(self):
        self.raw = 0
        self.disk = 0

    def spilled(self, raw_bytes, disk_bytes):
        self.raw += raw_bytes
        self.disk += disk_bytes


class TestByteAccounting:
    RECORDS = [(i * 7) % 1000 for i in range(3000)]

    def test_none_codec_raw_equals_disk(self, tmp_path):
        session = _Session()
        path = str(tmp_path / "plain.txt")
        write_sequence(path, self.RECORDS, INT, 256, session=session)
        import os

        assert session.raw == session.disk == os.path.getsize(path)

    @pytest.mark.parametrize("codec", ["zlib", "lzma", "front+zlib"])
    def test_compressed_disk_below_raw(self, tmp_path, codec):
        session = _Session()
        path = str(tmp_path / "packed.dat")
        write_sequence(
            path, sorted(self.RECORDS), INT, 256, codec=codec,
            session=session,
        )
        import os

        assert session.disk == os.path.getsize(path)
        assert session.disk < session.raw

    def test_raw_is_codec_invariant(self, tmp_path):
        """raw counts what codec=none would write, so ratios compare
        like against like."""
        sizes = {}
        for codec in ("none", "zlib", "front"):
            session = _Session()
            write_sequence(
                str(tmp_path / f"{codec.replace('+', '_')}.dat"),
                self.RECORDS, INT, 256, codec=codec, session=session,
            )
            sizes[codec] = session.raw
        assert len(set(sizes.values())) == 1

    def test_write_block_file_reports_to_session(self, tmp_path):
        session = _Session()
        count, _ = write_block_file(
            str(tmp_path / "f.dat"), self.RECORDS, INT, 256,
            codec="zlib", session=session,
        )
        assert count == len(self.RECORDS)
        assert 0 < session.disk < session.raw

    def test_blockwriter_counters(self, tmp_path):
        path = str(tmp_path / "w.dat")
        with open_run(path, "w", INT, codec="zlib") as handle:
            writer = BlockWriter(handle, INT, 128, codec="zlib")
            writer.write_all(iter(self.RECORDS))
            writer.flush()
        import os

        assert writer.disk_bytes == os.path.getsize(path)
        assert writer.raw_bytes > writer.disk_bytes


# ---------------------------------------------------------------------------
# engine + report + fingerprints
# ---------------------------------------------------------------------------


class TestEngineSpillCodecs:
    DATA = [((i * 613) % 5000) for i in range(4000)]

    @pytest.mark.parametrize("codec", SPILL_CODECS)
    def test_spilling_sort_identical_output(self, codec):
        engine = SortEngine(
            GeneratorSpec("lss", 256), fan_in=4, buffer_records=64,
            block_records=64, spill_codec=codec,
        )
        assert list(engine.sort(iter(self.DATA))) == sorted(self.DATA)
        report = engine.report
        assert report.spill_disk_bytes > 0
        if codec in ("zlib", "lzma", "front+zlib"):
            assert report.spill_disk_bytes < report.spill_raw_bytes

    def test_auto_codec_resolves_and_sorts(self):
        engine = SortEngine(
            GeneratorSpec("lss", 256), fan_in=4, buffer_records=64,
            block_records=64, spill_codec=AUTO_CODEC,
        )
        assert list(engine.sort(iter(self.DATA))) == sorted(self.DATA)

    def test_in_memory_sort_reports_no_spill(self):
        engine = SortEngine(
            GeneratorSpec("lss", 100_000), spill_codec="zlib",
        )
        out = list(engine.sort(iter(self.DATA)))
        assert out == sorted(self.DATA)

    def test_report_summary_line(self):
        report = SortReport(
            algorithm="LSS", records=10,
            spill_raw_bytes=1000, spill_disk_bytes=400,
        )
        assert "spilled bytes raw=1000  on_disk=400  ratio=2.50" in (
            report.summary()
        )

    def test_simulated_report_has_no_spill_line(self):
        assert "spilled" not in SortReport(
            algorithm="LSS", records=10
        ).summary()

    def test_operator_report_carries_spill_bytes(self):
        base = SortReport(
            algorithm="LSS", records=10,
            spill_raw_bytes=900, spill_disk_bytes=300,
        )
        op = report_from_sort("distinct", base, rows_in=10, rows_out=9)
        assert op.spill_raw_bytes == 900
        assert op.spill_disk_bytes == 300
        assert op.spill_ratio == 3.0


class TestResumeFingerprints:
    def test_codec_in_serial_fingerprint(self, tmp_path):
        def fp(codec):
            return ResumableSpillSort(
                memory=32, work_dir=str(tmp_path / codec),
                spill_codec=codec,
            ).fingerprint()

        assert fp("zlib")["codec"] == "zlib"
        assert fp("zlib") != fp("lzma")

    def test_codec_in_parallel_fingerprint(self, tmp_path):
        sorter = PartitionedSort(
            GeneratorSpec("rs", 64), workers=2, spill_codec="front",
            work_dir=str(tmp_path / "w"),
        )
        assert sorter._fingerprint()["codec"] == "front"

    def test_mixed_codec_work_dir_is_wiped(self, tmp_path):
        """--resume must not merge runs written under another codec:
        a codec change invalidates the journal and starts fresh."""
        work = str(tmp_path)
        fp_zlib = ResumableSpillSort(
            memory=32, work_dir=work, spill_codec="zlib"
        ).fingerprint()
        fp_front = ResumableSpillSort(
            memory=32, work_dir=work, spill_codec="front"
        ).fingerprint()
        SortJournal.open_dir(work, fp_zlib, resume=False).close()
        stale = tmp_path / "run-000.txt"
        stale.write_text("stale zlib run\n")
        journal = SortJournal.open_dir(work, fp_front, resume=True)
        journal.close()
        assert not stale.exists()
        assert [e["type"] for e in journal.entries] == ["meta"]


# ---------------------------------------------------------------------------
# planner codec row
# ---------------------------------------------------------------------------


class TestPlannerCodecRow:
    def test_explicit_codec_passes_through(self):
        for codec in SPILL_CODECS:
            assert _resolve_codec(codec, None, 100, 10) == codec

    def test_auto_single_pass_picks_front(self):
        assert _resolve_codec(AUTO_CODEC, 500, 100, 10) == "front"

    def test_auto_multi_pass_or_unknown_picks_front_zlib(self):
        assert _resolve_codec(AUTO_CODEC, 5000, 100, 10) == "front+zlib"
        assert _resolve_codec(AUTO_CODEC, None, 100, 10) == "front+zlib"

    def test_lzma_never_chosen_automatically(self):
        for records in (None, 10, 10_000, 10_000_000):
            for memory in (1, 100, 100_000):
                picked = _resolve_codec(AUTO_CODEC, records, memory, 10)
                assert picked != "lzma"

    def test_plan_in_memory_has_no_codec(self):
        plan = plan_sort(memory=1000, input_records=10, codec=AUTO_CODEC)
        assert plan.mode == "in_memory"
        assert plan.codec is None

    def test_plan_spill_resolves_auto(self):
        plan = plan_sort(memory=100, input_records=50_000, codec=AUTO_CODEC)
        assert plan.mode == "spill"
        assert plan.codec == "front+zlib"

    def test_plan_rejects_unknown_codec(self):
        with pytest.raises(ValueError):
            plan_sort(memory=100, codec="brotli")
