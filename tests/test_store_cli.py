"""The ``repro store`` CLI surface, driven in-process (ISSUE 10).

Same idiom as ``test_ops_cli.py``: call :func:`repro.cli.main`
directly with argv and capture stdout/stderr through capsys —
subprocess spawns stay in the fault/kill tests where a real process
boundary is the point.
"""

import json
import os

import pytest

from repro.cli import main
from repro.store import Store


def run(capsys, argv):
    code = main(argv)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


@pytest.fixture()
def db(tmp_path):
    return str(tmp_path / "db")


class TestPutGetDelete:
    def test_round_trip(self, capsys, db):
        code, _, _ = run(capsys, ["store", "put", db, "alpha", "one"])
        assert code == 0
        code, out, _ = run(capsys, ["store", "get", db, "alpha"])
        assert code == 0
        assert out == "one\n"

    def test_get_miss_exits_2(self, capsys, db):
        run(capsys, ["store", "put", db, "alpha", "one"])
        code, out, err = run(capsys, ["store", "get", db, "missing"])
        assert code == 2
        assert out == ""
        assert "not found" in err

    def test_delete_then_miss(self, capsys, db):
        run(capsys, ["store", "put", db, "alpha", "one"])
        code, _, _ = run(capsys, ["store", "delete", db, "alpha"])
        assert code == 0
        code, _, _ = run(capsys, ["store", "get", db, "alpha"])
        assert code == 2

    def test_binary_keys_round_trip_escaped(self, capsys, db):
        key = "bin\\x00key"
        value = "tab\\there\\nand newline"
        assert run(capsys, ["store", "put", db, key, value])[0] == 0
        code, out, _ = run(capsys, ["store", "get", db, key])
        assert code == 0
        # get prints the escaped form — symmetric with how the value
        # was passed in, and safe for values containing separators.
        assert out == "tab\\there\\nand newline\n"
        # But the store really holds the raw bytes, not the escapes.
        with Store(db, sync=False) as store:
            assert store.get(b"bin\x00key") == b"tab\there\nand newline"

    def test_malformed_escape_fails_cleanly(self, capsys, db):
        code, _, err = run(capsys, ["store", "put", db, "bad\\x2", "v"])
        assert code == 1
        assert err.startswith("repro: store put failed:")


class TestScanIngest:
    def seed(self, capsys, db):
        for key, value in (("b", "2"), ("a", "1"), ("c", "3")):
            run(capsys, ["store", "put", db, key, value])

    def test_scan_is_sorted(self, capsys, db):
        self.seed(capsys, db)
        code, out, err = run(capsys, ["store", "scan", db])
        assert code == 0
        assert out == "a\t1\nb\t2\nc\t3\n"
        assert "3 item(s)" in err

    def test_scan_range(self, capsys, db):
        self.seed(capsys, db)
        code, out, _ = run(capsys, ["store", "scan", db, "--start", "b"])
        assert out == "b\t2\nc\t3\n"
        code, out, _ = run(capsys, ["store", "scan", db, "--end", "b"])
        assert out == "a\t1\n"

    def test_scan_to_file(self, capsys, db, tmp_path):
        self.seed(capsys, db)
        target = str(tmp_path / "dump.tsv")
        code, out, _ = run(capsys, ["store", "scan", db, "-o", target])
        assert code == 0
        assert out == ""
        assert open(target).read() == "a\t1\nb\t2\nc\t3\n"

    def test_ingest_oplog(self, capsys, db, tmp_path):
        oplog = tmp_path / "ops.tsv"
        oplog.write_text(
            "put\tx\t1\n"
            "put\ty\t2\n"
            "\n"
            "del\tx\n"
            "put\tz\t3\n"
        )
        code, _, err = run(capsys, ["store", "ingest", db, str(oplog)])
        assert code == 0
        assert "3 operation(s)" in err or "4 operation(s)" in err
        code, out, _ = run(capsys, ["store", "scan", db])
        assert out == "y\t2\nz\t3\n"

    def test_ingest_bad_line_names_it(self, capsys, db, tmp_path):
        oplog = tmp_path / "ops.tsv"
        oplog.write_text("put\tx\t1\nbogus line\n")
        code, _, err = run(capsys, ["store", "ingest", db, str(oplog)])
        assert code == 1
        assert "line 2" in err


class TestMaintenance:
    def test_flush_compact_verify(self, capsys, db):
        for index in range(30):
            run(
                capsys,
                [
                    "store", "put", db, f"k{index:03d}", f"v{index}",
                    "--memory", "8",
                ],
            )
        code, _, err = run(capsys, ["store", "flush", db])
        assert code == 0
        code, _, _ = run(capsys, ["store", "compact", db])
        assert code == 0
        code, out, _ = run(capsys, ["store", "verify", db])
        assert code == 0
        summary = json.loads(out)
        assert summary["table_records"] == 30
        assert summary["memtable_records"] == 0
        assert list(summary["levels"].values()) == [1]

    def test_codec_and_tuning_flags(self, capsys, db):
        args = [
            "--memory", "4", "--block-records", "4",
            "--codec", "front+zlib", "--fan-in", "2",
        ]
        for index in range(20):
            assert (
                run(
                    capsys,
                    ["store", "put", db, f"k{index:02d}", "v"] + args,
                )[0]
                == 0
            )
        code, out, _ = run(capsys, ["store", "scan", db] + args)
        assert code == 0
        assert len(out.splitlines()) == 20


class TestFailureModes:
    def test_lock_contention(self, capsys, db):
        with Store(db, sync=False):
            code, _, err = run(capsys, ["store", "get", db, "k"])
        assert code == 1
        assert "repro: store get failed:" in err
        assert "locked" in err

    def test_foreign_directory_refused(self, capsys, tmp_path):
        target = tmp_path / "stuff"
        target.mkdir()
        (target / "data.txt").write_text("unrelated")
        code, _, err = run(
            capsys, ["store", "put", str(target), "k", "v"]
        )
        assert code == 1
        assert "refusing" in err

    def test_corrupt_manifest_is_reported(self, capsys, db):
        run(capsys, ["store", "put", db, "k", "v"])
        manifest = os.path.join(db, "MANIFEST")
        with open(manifest, "r+", encoding="utf-8") as handle:
            data = handle.read()
            handle.seek(0)
            handle.write("garbage\n" + data)
        code, _, err = run(capsys, ["store", "get", db, "k"])
        assert code == 1
        assert "repro: store get failed:" in err
