"""Tests for two-way replacement selection (Chapter 4, Theorems 2, 4, 6, 7)."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import TABLE_5_13_CONFIGS, TwoWayConfig
from repro.core.heuristics import INPUT_HEURISTICS, OUTPUT_HEURISTICS
from repro.core.two_way import TwoWayReplacementSelection
from repro.runs.replacement_selection import ReplacementSelection
from repro.workloads.generators import (
    alternating_input,
    make_input,
    mixed_balanced_input,
    mixed_imbalanced_input,
    random_input,
    reverse_sorted_input,
    sorted_input,
)


def runs_of(memory, records, config=None):
    return list(TwoWayReplacementSelection(memory, config).generate_runs(records))


class TestBasics:
    def test_empty_input(self):
        assert runs_of(10, []) == []

    def test_input_smaller_than_memory(self):
        assert runs_of(100, [3, 1, 2]) == [[1, 2, 3]]

    def test_single_record(self):
        assert runs_of(10, [42]) == [[42]]

    def test_duplicate_heavy_input(self):
        data = [5] * 100 + [3] * 100 + [7] * 100
        runs = runs_of(20, data)
        for run in runs:
            assert run == sorted(run)
        assert sorted(itertools.chain(*runs)) == sorted(data)

    def test_runs_are_sorted(self):
        runs = runs_of(8, random_input(500, seed=1))
        for run in runs:
            assert run == sorted(run)

    def test_multiset_preserved(self):
        data = list(random_input(2_000, seed=2))
        runs = runs_of(50, data)
        assert sorted(itertools.chain(*runs)) == sorted(data)

    def test_stats_track_runs(self):
        algo = TwoWayReplacementSelection(50)
        runs = list(algo.generate_runs(random_input(1_000, seed=1)))
        assert algo.stats.runs_out == len(runs)
        assert algo.stats.records_in == 1_000
        assert sum(algo.stats.run_lengths) == 1_000

    def test_memory_too_small_for_heaps(self):
        config = TwoWayConfig(buffer_fraction=0.0)
        algo = TwoWayReplacementSelection(1, config)  # 1-record heap
        assert list(algo.generate_runs([2, 1])) in ([[1, 2]], [[2], [1]])

    def test_memory_partition_sums_to_total(self):
        for name, config in TABLE_5_13_CONFIGS.items():
            algo = TwoWayReplacementSelection(1_000, config)
            total = (
                algo.heap_capacity
                + algo.input_buffer_capacity
                + algo.victim_buffer_capacity
            )
            assert total == 1_000, name


class TestTheorems:
    def test_theorem_2_sorted_input_single_run(self):
        data = list(sorted_input(5_000))
        runs = runs_of(100, data)
        assert len(runs) == 1
        assert runs[0] == data

    def test_theorem_4_reverse_input_single_run(self):
        """2WRS turns RS's worst case into a single run."""
        data = list(reverse_sorted_input(5_000))
        runs = runs_of(100, data)
        assert len(runs) == 1
        assert runs[0] == sorted(data)

    def test_theorem_6_alternating_one_run_per_section(self):
        """k >> m: each monotone section becomes one run."""
        sections = 8
        data = list(alternating_input(16_000, sections=sections, seed=1, noise=100))
        runs = runs_of(200, data)
        assert len(runs) == sections

    def test_theorem_7_2wrs_not_worse_than_rs_on_reverse(self):
        data = list(reverse_sorted_input(3_000, seed=1, noise=10))
        rs_runs = ReplacementSelection(100).count_runs(data)
        twrs_runs = TwoWayReplacementSelection(100).count_runs(data)
        assert twrs_runs <= rs_runs

    def test_random_input_roughly_double_memory(self):
        memory = 250
        data = list(random_input(50_000, seed=3))
        runs = runs_of(memory, data)
        average = len(data) / len(runs)
        assert 1.6 * memory <= average <= 2.4 * memory

    def test_mixed_balanced_collapses_to_few_runs(self):
        """The victim buffer collapses mixed data (paper: 2 runs; a
        small startup/tail run may appear at reduced scale)."""
        data = list(mixed_balanced_input(20_000, seed=1, noise=1000))
        runs = runs_of(500, data, TABLE_5_13_CONFIGS["cfg3"])
        assert len(runs) <= 3
        assert max(len(r) for r in runs) > 0.9 * len(data)

    def test_mixed_imbalanced_collapses_to_few_runs(self):
        data = list(mixed_imbalanced_input(20_000, seed=1, noise=1000))
        runs = runs_of(500, data, TABLE_5_13_CONFIGS["cfg3"])
        assert len(runs) <= 3
        assert max(len(r) for r in runs) > 0.8 * len(data)


class TestStreams:
    def test_stream_invariants_per_run(self):
        algo = TwoWayReplacementSelection(100)
        for streams in algo.generate_run_streams(random_input(3_000, seed=5)):
            assert streams.check_invariants()

    def test_stream_totals_match_run_length(self):
        algo = TwoWayReplacementSelection(100)
        for streams in algo.generate_run_streams(random_input(2_000, seed=5)):
            assert len(streams.assemble()) == len(streams)

    def test_reverse_input_uses_bottom_stream(self):
        algo = TwoWayReplacementSelection(100)
        streams = list(algo.generate_run_streams(reverse_sorted_input(2_000)))[0]
        # Nearly everything should leave through stream 4 (BottomHeap).
        assert len(streams.stream4) > 0.8 * len(streams)

    def test_sorted_input_uses_top_stream(self):
        algo = TwoWayReplacementSelection(100)
        streams = list(algo.generate_run_streams(sorted_input(2_000)))[0]
        assert len(streams.stream1) > 0.8 * len(streams)

    def test_mixed_input_uses_victim_streams(self):
        config = TwoWayConfig(buffer_setup="both", buffer_fraction=0.05)
        algo = TwoWayReplacementSelection(500, config)
        data = mixed_balanced_input(10_000, seed=1, noise=1000)
        streams = next(iter(algo.generate_run_streams(data)))
        assert len(streams.stream2) + len(streams.stream3) > 0


class TestAllHeuristicCombinations:
    @pytest.mark.parametrize("input_h", sorted(INPUT_HEURISTICS))
    @pytest.mark.parametrize("output_h", sorted(OUTPUT_HEURISTICS))
    def test_correctness_on_random(self, input_h, output_h):
        config = TwoWayConfig(
            buffer_setup="both",
            buffer_fraction=0.02,
            input_heuristic=input_h,
            output_heuristic=output_h,
            seed=13,
        )
        data = list(random_input(2_000, seed=9))
        runs = runs_of(100, data, config)
        for run in runs:
            assert run == sorted(run)
        assert sorted(itertools.chain(*runs)) == sorted(data)

    @pytest.mark.parametrize("input_h", sorted(INPUT_HEURISTICS))
    def test_correctness_on_mixed(self, input_h):
        config = TwoWayConfig(
            buffer_setup="both", buffer_fraction=0.02, input_heuristic=input_h
        )
        data = list(mixed_balanced_input(2_000, seed=9, noise=100))
        runs = runs_of(100, data, config)
        for run in runs:
            assert run == sorted(run)
        assert sorted(itertools.chain(*runs)) == sorted(data)


class TestBufferSetups:
    @pytest.mark.parametrize("setup", ["input", "both", "victim"])
    @pytest.mark.parametrize("fraction", [0.0002, 0.02, 0.2])
    def test_every_setup_correct(self, setup, fraction):
        config = TwoWayConfig(buffer_setup=setup, buffer_fraction=fraction)
        data = list(make_input("mixed_imbalanced", 3_000, seed=4))
        runs = runs_of(200, data, config)
        for run in runs:
            assert run == sorted(run)
        assert sorted(itertools.chain(*runs)) == sorted(data)

    def test_no_buffers_at_all(self):
        config = TwoWayConfig(buffer_setup="both", buffer_fraction=0.0)
        data = list(random_input(1_000, seed=4))
        runs = runs_of(100, data, config)
        assert sorted(itertools.chain(*runs)) == sorted(data)

    def test_victim_helps_on_mixed(self):
        data = list(mixed_balanced_input(20_000, seed=1, noise=1000))
        with_victim = TwoWayConfig(buffer_setup="both", buffer_fraction=0.02)
        without = TwoWayConfig(buffer_setup="input", buffer_fraction=0.02)
        runs_with = TwoWayReplacementSelection(500, with_victim).count_runs(data)
        runs_without = TwoWayReplacementSelection(500, without).count_runs(data)
        assert runs_with < runs_without


class TestGeneratorReuse:
    def test_second_invocation_resets_stats(self):
        algo = TwoWayReplacementSelection(100)
        list(algo.generate_runs(random_input(1_000, seed=1)))
        first = algo.stats.runs_out
        list(algo.generate_runs(random_input(1_000, seed=1)))
        assert algo.stats.runs_out == first

    def test_deterministic_given_seed(self):
        a = runs_of(100, random_input(1_000, seed=1))
        b = runs_of(100, random_input(1_000, seed=1))
        assert a == b


@settings(max_examples=100, deadline=None)
@given(
    st.lists(st.integers(-10_000, 10_000), max_size=300),
    st.integers(2, 40),
)
def test_2wrs_runs_sorted_and_complete(data, memory):
    runs = runs_of(memory, data)
    for run in runs:
        assert run == sorted(run)
    assert sorted(itertools.chain(*runs)) == sorted(data)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(-1000, 1000), max_size=200),
    st.integers(2, 30),
    st.sampled_from(sorted(INPUT_HEURISTICS)),
    st.sampled_from(sorted(OUTPUT_HEURISTICS)),
    st.sampled_from(["input", "both", "victim"]),
)
def test_2wrs_correct_for_any_configuration(data, memory, input_h, output_h, setup):
    config = TwoWayConfig(
        buffer_setup=setup,
        buffer_fraction=0.1,
        input_heuristic=input_h,
        output_heuristic=output_h,
        seed=3,
    )
    runs = runs_of(memory, data, config)
    for run in runs:
        assert run == sorted(run)
    assert sorted(itertools.chain(*runs)) == sorted(data)


@settings(max_examples=50, deadline=None)
@given(st.integers(0, 2**31), st.integers(3, 30))
def test_2wrs_matches_rs_on_sorted_prefixes(seed, memory):
    """Sorted input: both algorithms produce the identical single run."""
    data = list(sorted_input(500, seed=seed))
    rs = list(ReplacementSelection(memory).generate_runs(data))
    twrs = runs_of(memory, data)
    assert rs == twrs == [data]


class TestLazyStatistics:
    """The acceptance property: heuristics that ignore the distribution
    statistics trigger zero mean/median computations end-to-end."""

    @staticmethod
    def _run(input_heuristic, output_heuristic="random"):
        config = TwoWayConfig(
            buffer_setup="both",
            buffer_fraction=0.1,
            input_heuristic=input_heuristic,
            output_heuristic=output_heuristic,
            seed=11,
        )
        algo = TwoWayReplacementSelection(100, config)
        algo.count_runs(random_input(3_000, seed=11))
        return algo.last_input_buffer

    @pytest.mark.parametrize(
        "input_heuristic", ["random", "alternate", "useful", "balancing"]
    )
    def test_stat_blind_heuristics_compute_nothing(self, input_heuristic):
        buffer = self._run(input_heuristic)
        assert buffer.mean_computations == 0
        assert buffer.median_computations == 0

    def test_mean_heuristic_computes_only_means(self):
        buffer = self._run("mean")
        assert buffer.mean_computations > 0
        assert buffer.median_computations == 0
        # Memoization bound: at most one computation per mutation, far
        # fewer than one per routing decision.
        assert buffer.mean_computations <= 2 * buffer.records_read + 2

    def test_median_heuristic_computes_only_medians(self):
        buffer = self._run("median")
        assert buffer.median_computations > 0
        assert buffer.mean_computations == 0

    def test_laziness_preserves_results(self):
        """Lazy statistics must not change what the algorithm produces."""
        config = TwoWayConfig(
            buffer_setup="both",
            buffer_fraction=0.1,
            input_heuristic="mean",
            output_heuristic="random",
            seed=4,
        )
        data = list(mixed_balanced_input(5_000, seed=4))
        runs = list(
            TwoWayReplacementSelection(200, config).generate_runs(iter(data))
        )
        flat = sorted(record for run in runs for record in run)
        assert flat == sorted(data)
        for run in runs:
            assert run == sorted(run)
