"""Tests for the pluggable record formats (repro.core.records)."""

import pickle

import pytest

from repro.core.records import (
    FLOAT,
    FORMAT_NAMES,
    INT,
    STR,
    CallableFormat,
    DelimitedFormat,
    resolve_format,
)


class TestScalarFormats:
    @pytest.mark.parametrize(
        "fmt,values",
        [
            (INT, [-5, 0, 3, 1_000_000_007]),
            (FLOAT, [-1.25, 0.0, 3.5, 1e-9, 12345.6789]),
            (STR, ["", "apple", "pear with spaces", "ünïcode"]),
        ],
        ids=["int", "float", "str"],
    )
    def test_line_round_trip(self, fmt, values):
        for value in values:
            assert fmt.decode(fmt.encode(value)) == value

    @pytest.mark.parametrize(
        "fmt,values",
        [
            (INT, [7, -3, 42]),
            (FLOAT, [1.5, -2.25, 0.0]),
            (STR, ["b", "a", "c"]),
        ],
        ids=["int", "float", "str"],
    )
    def test_block_round_trip(self, fmt, values):
        text = fmt.encode_block(values)
        # Blocks are written as-is to files and read back as raw lines
        # with their terminators.
        lines = text.splitlines(keepends=True)
        assert fmt.decode_block(lines) == values

    def test_block_of_nothing(self):
        assert INT.encode_block([]) == ""
        assert INT.decode_block([]) == []

    def test_block_matches_per_record_encoding(self):
        values = [3, 1, 2]
        assert INT.encode_block(values) == "".join(
            f"{INT.encode(v)}\n" for v in values
        )

    def test_scalar_key_is_identity(self):
        assert INT.key(42) == 42
        assert STR.key("abc") == "abc"

    def test_numeric_flags(self):
        assert INT.numeric and FLOAT.numeric
        assert not STR.numeric
        assert not DelimitedFormat().numeric

    def test_float_repr_round_trips_exactly(self):
        value = 0.1 + 0.2  # famously not 0.3
        assert FLOAT.decode(FLOAT.encode(value)) == value

    def test_float_rejects_nan(self):
        # NaN is unordered against everything: one NaN record would
        # silently corrupt the merge order of every backend.
        with pytest.raises(ValueError, match="NaN"):
            FLOAT.decode("nan")
        with pytest.raises(ValueError, match="NaN"):
            FLOAT.decode_block(["1.0\n", "nan\n", "2.0\n"])

    def test_float_accepts_infinities(self):
        assert FLOAT.decode_block(["-inf\n", "1.5\n", "inf\n"]) == [
            float("-inf"),
            1.5,
            float("inf"),
        ]


class TestDelimitedFormat:
    def test_key_extraction_and_tie_break(self):
        fmt = DelimitedFormat(",", 1)
        a = fmt.decode("x,5,first")
        b = fmt.decode("y,5,second")
        c = fmt.decode("z,3,third")
        assert fmt.key(a) == (0, 5)
        # Same key: ties break on the full row text, so sorting is total.
        assert sorted([b, a, c]) == [c, a, b]

    def test_encode_preserves_row_bytes(self):
        fmt = DelimitedFormat(",", 0)
        row = "7,  spaced ,trailing,"
        assert fmt.encode(fmt.decode(row)) == row

    def test_numeric_then_text_keys(self):
        fmt = DelimitedFormat(",", 0)
        assert fmt.key(fmt.decode("12,a")) == (0, 12)
        assert fmt.key(fmt.decode("1.5,a")) == (0, 1.5)
        assert fmt.key(fmt.decode("west,a")) == (1, "west")

    def test_mixed_numeric_and_text_key_column_still_sorts(self):
        # A text column where one value looks numeric must not crash
        # the merge with a str-vs-int TypeError: numeric keys rank
        # before text keys, and each group compares within itself.
        fmt = DelimitedFormat(",", 1)
        rows = ["a,1", "b,xyz", "c,3", "d,2.5", "e,abc"]
        records = sorted(fmt.decode(r) for r in rows)
        assert [fmt.encode(r) for r in records] == [
            "a,1",
            "d,2.5",
            "c,3",
            "e,abc",
            "b,xyz",
        ]

    def test_underscore_tokens_stay_text(self):
        # int("1_2") == 12 in Python, but an ID-like token must not be
        # silently coerced to a number.
        fmt = DelimitedFormat(",", 0)
        assert fmt.key(fmt.decode("1_2,a")) == (1, "1_2")
        rows = sorted(fmt.decode(r) for r in ["1_2,a", "9,b", "03,c"])
        assert [fmt.encode(r) for r in rows] == ["03,c", "9,b", "1_2,a"]

    def test_nan_key_column_rejected(self):
        fmt = DelimitedFormat(",", 1)
        with pytest.raises(ValueError, match="NaN"):
            fmt.decode("row1,nan,x")

    def test_blank_skippability_by_format(self):
        # Whitespace lines can never be numeric or delimited records
        # (rows), but for the str format they ARE records and must not
        # be skippable.
        assert INT.blank_input_skippable
        assert FLOAT.blank_input_skippable
        assert DelimitedFormat().blank_input_skippable
        assert not STR.blank_input_skippable

    def test_missing_key_column_is_a_clear_error(self):
        fmt = DelimitedFormat(",", 3)
        with pytest.raises(ValueError, match="key column 3"):
            fmt.decode("only,two,columns".replace("three", ""))

    def test_block_round_trip(self):
        fmt = DelimitedFormat(",", 1)
        rows = ["a,2,x", "b,1,y", "c,3,z"]
        records = fmt.decode_block([r + "\n" for r in rows])
        assert [fmt.key(r) for r in records] == [(0, 2), (0, 1), (0, 3)]
        assert fmt.encode_block(records) == "".join(r + "\n" for r in rows)

    def test_tsv(self):
        fmt = resolve_format("tsv", key=1)
        record = fmt.decode("alpha\t9\tomega")
        assert fmt.key(record) == (0, 9)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DelimitedFormat(",,", 0)
        with pytest.raises(ValueError):
            DelimitedFormat("\n", 0)
        with pytest.raises(ValueError):
            DelimitedFormat(",", -1)

    def test_picklable_for_spawn_workers(self):
        fmt = DelimitedFormat(";", 2)
        clone = pickle.loads(pickle.dumps(fmt))
        assert clone.delimiter == ";"
        assert clone.key_column == 2
        assert clone.key(clone.decode("a;b;5")) == (0, 5)


class TestCallableFormat:
    def test_wraps_legacy_pair(self):
        fmt = CallableFormat(repr, float)
        assert fmt.decode(fmt.encode(2.5)) == 2.5
        text = fmt.encode_block([1.5, 2.5])
        assert fmt.decode_block(text.splitlines(keepends=True)) == [1.5, 2.5]

    def test_picklable_with_top_level_callables(self):
        fmt = CallableFormat(str, int)
        clone = pickle.loads(pickle.dumps(fmt))
        assert clone.decode("7") == 7


class TestResolveFormat:
    @pytest.mark.parametrize("name", FORMAT_NAMES)
    def test_known_names_resolve(self, name):
        assert resolve_format(name, key=1) is not None

    def test_unknown_name_is_a_clear_error(self):
        with pytest.raises(ValueError, match="unknown record format"):
            resolve_format("xml")

    def test_scalar_formats_are_shared_instances(self):
        assert resolve_format("int") is INT
        assert resolve_format("str") is STR
