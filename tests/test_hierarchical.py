"""Tests for hierarchical-data sorting (Section 3.7.4)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sort.hierarchical import HierarchicalSorter, TreeNode, parse, serialize


def random_tree(rng, depth=3, breadth=6):
    node = TreeNode(rng.randrange(1_000))
    if depth > 0:
        for _ in range(rng.randrange(breadth)):
            node.children.append(random_tree(rng, depth - 1, breadth))
    return node


class TestTreeNode:
    def test_descendant_count(self):
        root = TreeNode(0)
        a = root.add(TreeNode(1))
        a.add(TreeNode(2))
        root.add(TreeNode(3))
        assert root.descendant_count() == 3

    def test_is_sorted_detects_disorder(self):
        root = TreeNode(0)
        root.add(TreeNode(5))
        root.add(TreeNode(1))
        assert not root.is_sorted()

    def test_is_sorted_checks_recursively(self):
        root = TreeNode(0)
        child = root.add(TreeNode(1))
        child.add(TreeNode(9))
        child.add(TreeNode(2))
        assert not root.is_sorted()


class TestHierarchicalSorter:
    def test_invalid_memory(self):
        with pytest.raises(ValueError):
            HierarchicalSorter(0)

    def test_sorts_small_tree_internally(self):
        root = TreeNode("r")
        for key in (5, 1, 3):
            root.add(TreeNode(key))
        sorter = HierarchicalSorter(memory_capacity=100)
        out = sorter.sort(root)
        assert [c.key for c in out.children] == [1, 3, 5]
        assert sorter.external_sorts == 0

    def test_large_sibling_lists_go_external(self):
        rng = random.Random(1)
        root = TreeNode("r")
        for _ in range(5_000):
            root.add(TreeNode(rng.randrange(10**6)))
        sorter = HierarchicalSorter(memory_capacity=256)
        out = sorter.sort(root)
        assert out.is_sorted()
        assert sorter.external_sorts >= 1

    def test_preserves_node_count_and_data(self):
        rng = random.Random(2)
        root = random_tree(rng)
        root.data = "payload"
        out = HierarchicalSorter(64).sort(root)
        assert out.descendant_count() == root.descendant_count()
        assert out.data == "payload"

    def test_original_tree_untouched(self):
        root = TreeNode("r")
        root.add(TreeNode(9))
        root.add(TreeNode(1))
        before = [c.key for c in root.children]
        HierarchicalSorter(10).sort(root)
        assert [c.key for c in root.children] == before

    def test_duplicate_keys(self):
        root = TreeNode("r")
        for key in (3, 1, 3, 1):
            root.add(TreeNode(key))
        out = HierarchicalSorter(2).sort(root)
        assert [c.key for c in out.children] == [1, 1, 3, 3]


class TestSerialization:
    def test_roundtrip(self):
        tree = TreeNode(5, data="hello")
        tree.add(TreeNode(3))
        tree.add(TreeNode(9)).add(TreeNode(1))
        assert parse(serialize(tree)) == tree

    def test_string_keys(self):
        tree = TreeNode("book", data="title")
        tree.add(TreeNode("chapter"))
        assert parse(serialize(tree)) == tree

    def test_mismatched_tags(self):
        with pytest.raises(ValueError, match="mismatched"):
            parse("<a></b>")

    def test_unterminated(self):
        with pytest.raises(ValueError, match="unterminated"):
            parse("<a>")

    def test_trailing_content(self):
        with pytest.raises(ValueError, match="trailing"):
            parse("<a></a><b></b>")


@settings(max_examples=50, deadline=None)
@given(st.integers(0, 2**31), st.integers(1, 64))
def test_sorting_any_random_tree(seed, memory):
    rng = random.Random(seed)
    root = random_tree(rng)
    sorter = HierarchicalSorter(memory)
    out = sorter.sort(root)
    assert out.is_sorted()
    assert out.descendant_count() == root.descendant_count()
