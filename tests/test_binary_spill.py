"""Regression tests for the binary spill path (ISSUE 7 satellites).

Four families, each pinning a bug class the text path hides:

* **Float key order** (satellite 1) — ``-0.0`` vs ``0.0``, equal
  values under different spellings (``1e3`` vs ``1000.0``), and the
  infinities must sort stably, round-trip byte-identically, and agree
  with ``sorted()`` and GNU ``sort -g``.
* **Delimited empty vs missing key columns** (satellite 2) — an empty
  field (``a,,c`` with ``--key 1``) is data and sorts as the empty
  text key; a missing column (``a`` with ``--key 1``) is malformed and
  raises the same ``ValueError`` on every backend, text or binary.
* **Framing self-defence** (satellite 3) — payload lines that look
  like ``#repro:blk`` headers survive checksummed text framing via
  escaping; binary RBLK framing is length-driven so look-alike bytes
  are inert; torn or corrupted binary blocks raise
  :class:`CorruptBlockError` naming what broke.
* **Hot-loop decode budget** (tentpole acceptance) — a counting format
  proves the spill+merge pipeline performs *zero* per-record
  ``decode``/``decode_block``/``key`` calls after input parsing, the
  invariant lint rule R007 guards statically.

Plus the resume-fingerprint encoding rule and the join format
compatibility errors that keep raw-byte keys from silently comparing
against decoded ones.
"""

import math
import os
import shutil
import struct
import subprocess

import pytest

from _helpers import sha256_file
from repro.cli import main
from repro.core.config import RECOMMENDED, GeneratorSpec
from repro.core.records import (
    FLOAT,
    INT,
    STR,
    BinaryRecordFormat,
    DelimitedFormat,
    KeyOnlyRecord,
    binary_format,
)
from repro.engine.block_io import (
    BINARY_BLOCK_MAGIC,
    ESCAPE_TOKEN,
    BlockWriter,
    open_bytes,
    open_text,
    read_blocks,
)
from repro.engine.errors import CorruptBlockError
from repro.engine.planner import SortEngine
from repro.engine.resilience import ResumableSpillSort
from repro.ops.join import _check_key_compatibility

GNU_SORT = shutil.which("sort")

SPILL_MEMORY = 8  # records; small enough that every corpus here spills


def cli_sort(tmp_path, lines, *extra, name="out"):
    """Run ``repro sort`` in-process; returns the output bytes."""
    source = tmp_path / f"{name}.in"
    source.write_text("".join(line + "\n" for line in lines))
    out = tmp_path / f"{name}.out"
    argv = ["sort", "--memory", str(SPILL_MEMORY), "--fan-in", "3",
            *extra, str(source), "-o", str(out)]
    assert main(argv) == 0
    return out.read_bytes()


def sorted_oracle(lines, fmt):
    """Stable ``sorted()`` over decoded records, re-encoded."""
    records = fmt.decode_block([line + "\n" for line in lines])
    return fmt.encode_block(sorted(records)).encode("utf-8")


# ---------------------------------------------------------------------------
# satellite 1: float key order
# ---------------------------------------------------------------------------


class TestFloatKeyOrder:
    """The spellings users actually write: signed zeros, scientific
    notation, infinities.  Equal *values* compare equal, so stability
    (input order) decides their output order — and every path must
    agree on it while preserving each spelling byte-for-byte."""

    ZEROS = ["0.0", "-0.0", "1.5", "-0.0", "0.0", "-1.5", "0.0",
             "-0.0", "0.5", "-0.5", "0.0"]

    SPELLINGS = ["1e3", "1000.0", "2.5", "1E3", "1e+3", "999.0",
                 "1000.0", "0.001", "1e-3", "1001.0", "1e3"]

    INFINITIES = ["inf", "-inf", "0.0", "1e308", "-1e308", "inf",
                  "-inf", "42.5", "-inf", "inf"]

    @pytest.mark.parametrize("lines", [ZEROS, SPELLINGS, INFINITIES],
                             ids=["zeros", "spellings", "infinities"])
    def test_text_and_binary_byte_identical(self, tmp_path, lines):
        """The tentpole guarantee on the spellings that expose it.

        Equal-value groups have no *stable* order through replacement
        selection (text or binary — runs reorder equals), so the
        contract is: binary reproduces the text path's bytes exactly,
        values are non-decreasing, and no line is lost or altered.
        """
        corpus = lines * 4  # spill at SPILL_MEMORY records
        text = cli_sort(tmp_path, corpus, "--format", "float", name="t")
        binary = cli_sort(tmp_path, corpus, "--format", "float",
                          "--binary-spill", name="b")
        assert text == binary
        out = text.decode("utf-8").splitlines()
        values = [float(line) for line in out]
        assert values == sorted(values)
        assert sorted(out) == sorted(corpus)

    @pytest.mark.parametrize("lines", [ZEROS, SPELLINGS, INFINITIES],
                             ids=["zeros", "spellings", "infinities"])
    def test_parallel_binary_matches_parallel_text(self, tmp_path, lines):
        """Same guarantee on the partitioned backend.  (Parallel and
        serial may legitimately order equal-key groups differently —
        sharding changes merge order — so the comparison is within the
        backend, the same identity the differential suite sweeps.)"""
        corpus = lines * 4
        text = cli_sort(tmp_path, corpus, "--format", "float",
                        "--workers", "2", name="s")
        binary = cli_sort(tmp_path, corpus, "--format", "float",
                          "--binary-spill", "--workers", "2", name="p")
        assert text == binary

    def test_spellings_round_trip_byte_identically(self, tmp_path):
        """``-0.0`` stays ``-0.0`` and ``1e3`` stays ``1e3``: the
        payload is the original text, never a re-``repr``."""
        corpus = (self.ZEROS + self.SPELLINGS) * 3
        out = cli_sort(tmp_path, corpus, "--format", "float",
                       "--binary-spill")
        got = sorted(out.decode("utf-8").splitlines())
        assert got == sorted(corpus)

    def test_negative_zero_group_matches_text_path_exactly(self, tmp_path):
        """All spellings of zero are one equal-key group; the binary
        path must emit that group in exactly the text path's order —
        the bug class the key codec's ``-0.0`` canonicalisation fixes
        (IEEE bytes would split the group: ``-0.0`` before ``0.0``)."""
        corpus = ["-0.0", "7.0", "0.0", "-7.0", "0.0", "-0.0"] * 5
        text = cli_sort(tmp_path, corpus, "--format", "float", name="t")
        binary = cli_sort(tmp_path, corpus, "--format", "float",
                          "--binary-spill", name="b")
        zeros = [line for line in binary.decode("utf-8").splitlines()
                 if float(line) == 0.0]
        assert zeros == [line for line in text.decode("utf-8").splitlines()
                         if float(line) == 0.0]
        assert sorted(zeros) == ["-0.0"] * 10 + ["0.0"] * 10

    @pytest.mark.skipif(GNU_SORT is None, reason="GNU sort not installed")
    def test_infinities_agree_with_gnu_sort_g(self, tmp_path):
        """Distinct values only (GNU sort is not stable), including the
        infinities: ``sort -g`` is an oracle sharing no code with us."""
        corpus = ["inf", "-inf", "1e308", "-1e308", "0.5", "-0.5",
                  "3.25", "-3.25", "1e-300", "-1e-300", "123.0"] * 1
        source = tmp_path / "gnu.in"
        source.write_text("".join(line + "\n" for line in corpus))
        gnu = subprocess.run(
            [GNU_SORT, "-g", str(source)], capture_output=True,
            env={**os.environ, "LC_ALL": "C"}, check=True,
        ).stdout
        for flags in ([], ["--binary-spill"]):
            got = cli_sort(tmp_path, corpus * 4, "--format", "float", *flags,
                           name="gnu" + ("b" if flags else "t"))
            # corpus * 4: each distinct line appears 4x consecutively
            # in sorted output; collapse back for the distinct oracle.
            collapsed = "".join(
                line + "\n"
                for i, line in enumerate(got.decode("utf-8").splitlines())
                if i % 4 == 0
            ).encode("utf-8")
            assert collapsed == gnu


# ---------------------------------------------------------------------------
# satellite 2: delimited empty vs missing key columns
# ---------------------------------------------------------------------------


class TestDelimitedEmptyVsMissing:
    EMPTY_KEY_CORPUS = ["a,,c", "b,2,x", "c,zz,y", "d,1.5,w", "e,,q",
                        "f,-3,r", "g,abc,s", "h,,t"] * 4

    def test_empty_field_is_the_empty_text_key(self):
        fmt = DelimitedFormat(",", key_column=1)
        assert fmt.key(fmt.decode("a,,c")) == (1, "")
        # Numbers rank before text; "" ranks before non-empty text.
        keys = sorted(
            fmt.key(fmt.decode(row)) for row in ("c,zz,y", "a,,c", "b,2,x")
        )
        assert keys == [(0, 2), (1, ""), (1, "zz")]

    def test_empty_key_identical_across_backends(self, tmp_path):
        args = ["--format", "csv", "--key", "1"]
        want = sorted_oracle(
            self.EMPTY_KEY_CORPUS, DelimitedFormat(",", key_column=1)
        )
        outputs = {
            "text": cli_sort(tmp_path, self.EMPTY_KEY_CORPUS, *args,
                             name="text"),
            "binary": cli_sort(tmp_path, self.EMPTY_KEY_CORPUS, *args,
                               "--binary-spill", name="bin"),
            "parallel": cli_sort(tmp_path, self.EMPTY_KEY_CORPUS, *args,
                                 "--workers", "2", name="par"),
            "parallel-binary": cli_sort(
                tmp_path, self.EMPTY_KEY_CORPUS, *args, "--workers", "2",
                "--binary-spill", name="parbin"),
        }
        for backend, got in outputs.items():
            assert got == want, f"{backend} diverges on empty key fields"

    def test_empty_key_identical_through_ops(self, tmp_path):
        """The ops backend (distinct) sees the same empty-key order."""
        source = tmp_path / "ops.in"
        source.write_text(
            "".join(row + "\n" for row in self.EMPTY_KEY_CORPUS)
        )
        outs = []
        for suffix, flags in (("t", []), ("b", ["--binary-spill"])):
            out = tmp_path / f"ops.{suffix}.out"
            assert main(
                ["distinct", "--memory", str(SPILL_MEMORY), "--format",
                 "csv", "--key", "1", *flags, str(source), "-o", str(out)]
            ) == 0
            outs.append(out)
        assert sha256_file(outs[0]) == sha256_file(outs[1])
        # distinct dedupes whole records; the three empty-key rows are
        # distinct rows and land together: after every numeric key,
        # before every non-empty text key, tie-broken by row text.
        got = outs[0].read_text().splitlines()
        assert got == ["f,-3,r", "d,1.5,w", "b,2,x", "a,,c", "e,,q",
                       "h,,t", "g,abc,s", "c,zz,y"]

    MISSING = r"row has 1 column\(s\), key column 1 does not exist: 'a'"

    def test_missing_column_raises_at_decode(self):
        fmt = DelimitedFormat(",", key_column=1)
        with pytest.raises(ValueError, match=self.MISSING):
            fmt.decode("a")
        with pytest.raises(ValueError, match=self.MISSING):
            binary_format(fmt).decode("a")

    @pytest.mark.parametrize("flags", [[], ["--binary-spill"]],
                             ids=["text", "binary"])
    def test_missing_column_raises_in_cli_sort(self, tmp_path, flags):
        source = tmp_path / "missing.in"
        source.write_text("a\nb,2,x\n")
        with pytest.raises(ValueError, match=self.MISSING):
            main(["sort", "--format", "csv", "--key", "1", *flags,
                  str(source), "-o", str(tmp_path / "missing.out")])

    @pytest.mark.parametrize("flags", [[], ["--binary-spill"]],
                             ids=["text", "binary"])
    def test_missing_column_fails_ops_with_same_message(
        self, tmp_path, flags, capsys
    ):
        source = tmp_path / "missing.in"
        source.write_text("a\nb,2,x\n")
        code = main(["distinct", "--format", "csv", "--key", "1", *flags,
                     str(source), "-o", str(tmp_path / "missing.out")])
        assert code == 1
        err = capsys.readouterr().err
        assert "row has 1 column(s), key column 1 does not exist" in err


# ---------------------------------------------------------------------------
# satellite 3: framing self-defence
# ---------------------------------------------------------------------------


HOSTILE_LINES = [
    "#repro:blk 3 deadbeef",       # a plausible forged header
    "#repro:blk 0 00000000",
    "#repro:esc #repro:blk 1 11111111",  # an already-escaped look-alike
    "#repro: anything",
    "plain data",
    "RBLK not a header",
    "",
]


class TestFramingSelfDefence:
    def test_checksummed_text_escapes_header_lookalikes(self, tmp_path):
        path = tmp_path / "hostile.txt"
        with open_text(str(path), "w") as handle:
            writer = BlockWriter(handle, STR, block_records=3,
                                 checksum=True)
            writer.write_all(iter(HOSTILE_LINES))
            writer.flush()
        raw = path.read_text()
        assert ESCAPE_TOKEN in raw, "look-alike data lines must be escaped"
        with open_text(str(path), "r") as handle:
            got = [
                record
                for block in read_blocks(handle, STR, checksum=True)
                for record in block
            ]
        assert got == HOSTILE_LINES

    @pytest.mark.parametrize("checksum", [False, True])
    def test_binary_framing_is_inert_to_lookalike_bytes(
        self, tmp_path, checksum
    ):
        """RBLK bodies are consumed by byte length, never scanned, so
        payloads spelling ``RBLK`` or ``#repro:blk`` cannot confuse the
        reader."""
        fmt = binary_format(STR)
        records = fmt.decode_block([line + "\n" for line in HOSTILE_LINES])
        path = tmp_path / "hostile.bin"
        with open_bytes(str(path), "w") as handle:
            writer = BlockWriter(handle, fmt, block_records=2,
                                 checksum=checksum)
            writer.write_all(records)
            writer.flush()
        assert BINARY_BLOCK_MAGIC in path.read_bytes()
        with open_bytes(str(path), "r") as handle:
            got = [
                record
                for block in read_blocks(handle, fmt, checksum=checksum)
                for record in block
            ]
        assert got == records
        assert fmt.encode_block(got) == "".join(
            line + "\n" for line in HOSTILE_LINES
        )

    def test_cli_durable_sort_survives_hostile_payloads(self, tmp_path):
        """End to end: spilling + ``--checksum`` runs hold forged
        header lines as data, for both encodings (the fault-harness
        regression this satellite started from)."""
        corpus = [line for line in HOSTILE_LINES if line] * 6
        want = sorted_oracle(corpus, STR)
        for name, flags in (("text", []), ("bin", ["--binary-spill"])):
            got = cli_sort(
                tmp_path, corpus, "--format", "str", "--checksum",
                "--resume", "--work-dir", str(tmp_path / f"wd-{name}"),
                *flags, name=name,
            )
            assert got == want, f"{name} mangled header-lookalike payloads"

    # -- torn / corrupted binary files ------------------------------------

    def _binary_file(self, tmp_path, checksum=True):
        fmt = binary_format(STR)
        path = tmp_path / "blocks.bin"
        with open_bytes(str(path), "w") as handle:
            writer = BlockWriter(handle, fmt, block_records=4,
                                 checksum=checksum)
            writer.write_all(fmt.decode(f"record-{i}") for i in range(8))
            writer.flush()
        return path, fmt

    def _read_all(self, path, fmt, checksum=True):
        with open_bytes(str(path), "r") as handle:
            return [
                record for block in read_blocks(handle, fmt,
                                                checksum=checksum)
                for record in block
            ]

    def test_bad_magic_detected(self, tmp_path):
        path, fmt = self._binary_file(tmp_path)
        data = bytearray(path.read_bytes())
        data[:4] = b"JUNK"
        path.write_bytes(bytes(data))
        with pytest.raises(CorruptBlockError, match="magic"):
            self._read_all(path, fmt)

    def test_truncated_header_detected(self, tmp_path):
        path, fmt = self._binary_file(tmp_path)
        path.write_bytes(path.read_bytes()[:7])
        with pytest.raises(CorruptBlockError, match="truncated.*header"):
            self._read_all(path, fmt)

    def test_truncated_body_detected(self, tmp_path):
        path, fmt = self._binary_file(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 5])
        with pytest.raises(CorruptBlockError, match="truncated"):
            self._read_all(path, fmt)

    def test_flipped_payload_byte_fails_crc(self, tmp_path):
        path, fmt = self._binary_file(tmp_path)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # last payload byte: lengths stay consistent
        path.write_bytes(bytes(data))
        with pytest.raises(CorruptBlockError, match="checksum mismatch"):
            self._read_all(path, fmt)

    def test_unchecked_read_skips_crc_but_not_structure(self, tmp_path):
        """Without ``checksum`` the CRC is not verified (contract match
        with the text path) — but structural tears still raise."""
        path, fmt = self._binary_file(tmp_path, checksum=False)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        got = self._read_all(path, fmt, checksum=False)
        assert len(got) == 8  # flipped byte read back as (wrong) data
        path.write_bytes(bytes(data[:-3]))
        with pytest.raises(CorruptBlockError):
            self._read_all(path, fmt, checksum=False)

    def test_record_length_overrun_detected(self, tmp_path):
        path, fmt = self._binary_file(tmp_path, checksum=False)
        data = bytearray(path.read_bytes())
        header_size = struct.calcsize(">4sIII")
        # First record's key length claims more bytes than the body has.
        struct.pack_into(">I", data, header_size, 2 ** 20)
        path.write_bytes(bytes(data))
        with pytest.raises(CorruptBlockError, match="malformed|overrun"):
            self._read_all(path, fmt, checksum=False)


# ---------------------------------------------------------------------------
# tentpole acceptance: zero per-record decodes in spill + merge
# ---------------------------------------------------------------------------


class CountingBinaryFormat(BinaryRecordFormat):
    """Binary wrapper that counts the calls R007 bans from hot loops."""

    def __init__(self, base):
        super().__init__(base)
        self.decode_calls = 0
        self.decode_block_calls = 0
        self.key_calls = 0

    def decode(self, text):
        self.decode_calls += 1
        return super().decode(text)

    def decode_block(self, lines):
        self.decode_block_calls += 1
        return super().decode_block(lines)

    def key(self, record):
        self.key_calls += 1
        return super().key(record)

    def reset(self):
        self.decode_calls = self.decode_block_calls = self.key_calls = 0


class TestZeroDecodeHotLoop:
    """Once input text has become ``(key bytes, payload bytes)``
    records, the whole spill + merge pipeline runs on raw bytes: no
    decode, no key extraction, per record or per block.  This is the
    runtime twin of lint rule R007's static guarantee."""

    @pytest.mark.parametrize("base,lines", [
        (INT, [str((i * 7919) % 1000) for i in range(400)]),
        (FLOAT, [repr(((i * 31) % 97) / 8.0) for i in range(400)]),
        (DelimitedFormat(",", key_column=1),
         [f"r{i},{(i * 613) % 500},t" for i in range(400)]),
    ], ids=["int", "float", "csv"])
    @pytest.mark.parametrize("reading", ["naive", "forecasting"])
    def test_spilling_sort_never_decodes_after_parse(
        self, tmp_path, base, lines, reading
    ):
        fmt = CountingBinaryFormat(base)
        records = fmt.decode_block([line + "\n" for line in lines])
        assert fmt.decode_calls + fmt.decode_block_calls > 0
        fmt.reset()

        engine = SortEngine(
            GeneratorSpec("2wrs", 16, RECOMMENDED),
            record_format=fmt,
            fan_in=3,
            reading=reading,
            tmp_dir=str(tmp_path),
        )
        got = list(engine.sort(records, input_records=len(records)))
        assert engine.plan is not None and engine.plan.mode == "spill"
        assert [r[0] for r in got] == sorted(r[0] for r in records)

        assert fmt.decode_calls == 0, "spill/merge decoded a record"
        assert fmt.decode_block_calls == 0, "spill/merge decoded a block"
        if reading == "naive":
            assert fmt.key_calls == 0, "spill/merge re-extracted a key"
        else:
            # Forecasting probes one block *tail* key per buffer refill
            # (the waived call in merge_reading); per-block, never
            # per-record — a 50:1 bound is generous for both.
            assert fmt.key_calls * 50 <= len(records), (
                f"forecasting made {fmt.key_calls} key calls for "
                f"{len(records)} records — per-record, not per-block"
            )


# ---------------------------------------------------------------------------
# resume fingerprint: encoding is part of the journal contract
# ---------------------------------------------------------------------------


class TestResumeFingerprint:
    def test_encoding_field_separates_binary_from_text(self, tmp_path):
        def fingerprint(fmt):
            return ResumableSpillSort(
                memory=16, work_dir=str(tmp_path / "wd"),
                record_format=fmt,
            ).fingerprint()

        text = fingerprint(INT)
        binary = fingerprint(binary_format(INT))
        assert text["encoding"] == "text"
        assert binary["encoding"] == "binary"
        # Everything else being equal, the encodings must not resume
        # into each other: their run files are mutually unreadable.
        assert {k: v for k, v in text.items()
                if k not in ("encoding", "format")} == \
               {k: v for k, v in binary.items()
                if k not in ("encoding", "format")}
        assert text != binary


# ---------------------------------------------------------------------------
# join compatibility: raw bytes only compare against raw bytes
# ---------------------------------------------------------------------------


class TestJoinBinaryCompatibility:
    def test_mixed_binary_and_text_sides_rejected(self):
        with pytest.raises(ValueError, match="both sides or neither"):
            _check_key_compatibility(binary_format(INT), INT)
        with pytest.raises(ValueError, match="both sides or neither"):
            _check_key_compatibility(FLOAT, binary_format(FLOAT))

    def test_binary_scalar_layouts_must_match(self):
        with pytest.raises(ValueError, match="byte layouts differ"):
            _check_key_compatibility(
                binary_format(INT), binary_format(FLOAT)
            )

    def test_compatible_binary_pairs_accepted(self):
        _check_key_compatibility(binary_format(INT), binary_format(INT))
        # Delimited keys share one component layout across delimiters.
        _check_key_compatibility(
            binary_format(DelimitedFormat(",", key_column=1)),
            binary_format(DelimitedFormat("\t", key_column=0)),
        )

    def test_binary_float_records_stay_key_only(self):
        """The join's grouped() equality must see equal floats as one
        group even when their key bytes came from different spellings
        — guaranteed because the codec maps equal values to equal
        bytes and KeyOnlyRecord compares keys only."""
        fmt = binary_format(FLOAT)
        a = fmt.decode("1e3")
        b = fmt.decode("1000.0")
        assert isinstance(a, KeyOnlyRecord)
        assert a == b and not (a < b) and not (b < a)
        assert fmt.encode(a) == "1e3" and fmt.encode(b) == "1000.0"
        assert math.isinf(fmt.decode("inf").value)
