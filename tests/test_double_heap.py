"""Tests for the shared-array DoubleHeap (Section 4.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.heaps.binary_heap import HeapEmptyError, HeapFullError
from repro.heaps.double_heap import DoubleHeap


def make(capacity=16):
    """Bottom = max-heap, top = min-heap: the 2WRS arrangement."""
    return DoubleHeap(capacity, lambda a, b: a > b, lambda a, b: a < b)


class TestBasics:
    def test_empty(self):
        heaps = make()
        assert len(heaps) == 0
        assert not heaps
        assert heaps.free == 16

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            make(capacity=-1)

    def test_push_both_sides(self):
        heaps = make()
        heaps.bottom.push(3)
        heaps.top.push(7)
        assert len(heaps) == 2
        assert len(heaps.bottom) == 1
        assert len(heaps.top) == 1

    def test_bottom_pops_max(self):
        heaps = make()
        for v in (3, 9, 1, 7):
            heaps.bottom.push(v)
        assert [heaps.bottom.pop() for _ in range(4)] == [9, 7, 3, 1]

    def test_top_pops_min(self):
        heaps = make()
        for v in (3, 9, 1, 7):
            heaps.top.push(v)
        assert [heaps.top.pop() for _ in range(4)] == [1, 3, 7, 9]

    def test_pop_empty_side_raises(self):
        heaps = make()
        heaps.top.push(1)
        with pytest.raises(HeapEmptyError):
            heaps.bottom.pop()

    def test_peek_empty_side_raises(self):
        with pytest.raises(HeapEmptyError):
            make().top.peek()

    def test_replace(self):
        heaps = make()
        heaps.top.push(5)
        heaps.top.push(9)
        assert heaps.top.replace(7) == 5
        assert heaps.top.peek() == 7


class TestSharedCapacity:
    def test_one_side_can_use_all_capacity(self):
        heaps = make(capacity=8)
        for i in range(8):
            heaps.top.push(i)
        assert heaps.is_full
        with pytest.raises(HeapFullError):
            heaps.bottom.push(0)

    def test_sides_share_capacity(self):
        heaps = make(capacity=4)
        heaps.bottom.push(1)
        heaps.bottom.push(2)
        heaps.top.push(3)
        heaps.top.push(4)
        assert heaps.is_full
        with pytest.raises(HeapFullError):
            heaps.top.push(5)

    def test_growing_at_the_others_expense(self):
        # Figures 4.4-4.5: popping one side frees a slot the other may use.
        heaps = make(capacity=4)
        for v in (33, 28, 32, 16)[:2]:
            heaps.bottom.push(v)
        heaps.top.push(52)
        heaps.top.push(54)
        assert heaps.is_full
        heaps.bottom.pop()
        assert heaps.free == 1
        heaps.top.push(53)
        assert len(heaps.top) == 3
        assert len(heaps.bottom) == 1

    def test_zero_capacity(self):
        heaps = make(capacity=0)
        with pytest.raises(HeapFullError):
            heaps.top.push(1)


class TestArrayLayout:
    def test_figure_4_3_layout(self):
        # Figure 4.3: BottomHeap from index 0 upward, TopHeap stored in
        # reverse level order from the end of the array.
        heaps = make(capacity=14)
        for v in (33, 28, 32, 16, 20, 22, 4):
            heaps.bottom.push(v)
        for v in (52, 54, 72, 75, 64, 81, 77):
            heaps.top.push(v)
        array = heaps.as_array()
        assert array[0] == 33  # bottom root at index 0
        assert array[13] == 52  # top root at the last index
        assert heaps.check_invariant()

    def test_as_list_level_order(self):
        heaps = make()
        for v in (5, 2, 8):
            heaps.top.push(v)
        assert heaps.top.as_list()[0] == 2


@settings(max_examples=150)
@given(
    st.lists(
        st.tuples(st.sampled_from(["top", "bottom"]), st.integers()),
        max_size=60,
    )
)
def test_double_heap_matches_independent_heaps(operations):
    """The shared array must behave like two independent heaps."""
    import heapq

    heaps = make(capacity=100)
    reference_top = []
    reference_bottom = []
    for side, value in operations:
        if side == "top":
            heaps.top.push(value)
            heapq.heappush(reference_top, value)
        else:
            heaps.bottom.push(value)
            heapq.heappush(reference_bottom, -value)
    assert heaps.check_invariant()
    got_top = [heaps.top.pop() for _ in range(len(heaps.top))]
    got_bottom = [heaps.bottom.pop() for _ in range(len(heaps.bottom))]
    want_top = [heapq.heappop(reference_top) for _ in range(len(reference_top))]
    want_bottom = [
        -heapq.heappop(reference_bottom) for _ in range(len(reference_bottom))
    ]
    assert got_top == want_top
    assert got_bottom == want_bottom


@settings(max_examples=100)
@given(st.data())
def test_interleaved_push_pop_invariant(data):
    heaps = make(capacity=32)
    for _ in range(40):
        action = data.draw(st.sampled_from(["push_t", "push_b", "pop_t", "pop_b"]))
        if action == "push_t" and not heaps.is_full:
            heaps.top.push(data.draw(st.integers(0, 100)))
        elif action == "push_b" and not heaps.is_full:
            heaps.bottom.push(data.draw(st.integers(0, 100)))
        elif action == "pop_t" and heaps.top:
            heaps.top.pop()
        elif action == "pop_b" and heaps.bottom:
            heaps.bottom.pop()
        assert heaps.check_invariant()
