"""Decision-table edge cases of :func:`repro.engine.planner.plan_sort`.

The table's boundaries are exactly where a planning bug silently picks
the wrong backend (materialising a huge input in memory, or spilling a
tiny one to disk), so every threshold is pinned on both sides here:
``n == memory`` vs ``n == memory + 1``, ``n == memory * fan_in`` vs one
more, the minimum ``fan_in == 2``, and the unknown-size probe boundary
through the full :class:`SortEngine` (which buffers ``memory + 1``
records before deciding).
"""

import pytest

from repro.core.config import GeneratorSpec
from repro.engine.planner import AUTO_READING, SortEngine, plan_sort


def spec(memory=16):
    return GeneratorSpec(algorithm="rs", memory=memory)


class TestPlanSortEdges:
    def test_exactly_memory_sized_input_stays_in_memory(self):
        plan = plan_sort(memory=100, input_records=100)
        assert plan.mode == "in_memory"
        assert plan.reading is None

    def test_one_over_memory_spills(self):
        plan = plan_sort(memory=100, input_records=101)
        assert plan.mode == "spill"
        assert plan.reading == "naive"  # single warm merge pass

    def test_single_pass_boundary_naive_vs_forecasting(self):
        at = plan_sort(memory=100, fan_in=8, input_records=800)
        over = plan_sort(memory=100, fan_in=8, input_records=801)
        assert (at.mode, at.reading) == ("spill", "naive")
        assert (over.mode, over.reading) == ("spill", "forecasting")

    def test_minimum_fan_in_two(self):
        at = plan_sort(memory=10, fan_in=2, input_records=20)
        over = plan_sort(memory=10, fan_in=2, input_records=21)
        assert at.reading == "naive"
        assert over.reading == "forecasting"
        with pytest.raises(ValueError):
            plan_sort(memory=10, fan_in=1, input_records=20)

    def test_unknown_size_defaults_to_forecasting_spill(self):
        plan = plan_sort(memory=100, input_records=None)
        assert (plan.mode, plan.reading) == ("spill", "forecasting")

    def test_workers_win_over_tiny_input(self):
        plan = plan_sort(memory=100, workers=4, input_records=5)
        assert plan.mode == "parallel"
        assert plan.workers == 4
        assert plan.reading == "forecasting"

    def test_explicit_reading_always_respected(self):
        for input_records in (5, 100, 801, None):
            plan = plan_sort(
                memory=100, input_records=input_records,
                reading="double_buffering",
            )
            if plan.mode != "in_memory":
                assert plan.reading == "double_buffering"
        parallel = plan_sort(memory=100, workers=2, reading="naive")
        assert parallel.reading == "naive"

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            plan_sort(memory=0)
        with pytest.raises(ValueError):
            plan_sort(memory=10, workers=0)
        with pytest.raises(ValueError):
            plan_sort(memory=10, buffer_records=0)
        with pytest.raises(ValueError):
            plan_sort(memory=10, reading="bogus")

    def test_reason_strings_name_the_rule(self):
        assert "fit" in plan_sort(memory=10, input_records=10).reason
        assert "warm" in plan_sort(memory=10, input_records=20).reason
        assert "workers" in plan_sort(memory=10, workers=2).reason


class TestEngineProbeBoundary:
    """The unknown-size probe: memory records in memory, one more spills."""

    def test_exactly_memory_records_sorts_in_memory(self):
        engine = SortEngine(spec(memory=16))
        data = list(range(16, 0, -1))
        assert list(engine.sort(iter(data))) == sorted(data)
        assert engine.plan.mode == "in_memory"
        assert engine.report.algorithm == "MEM"

    def test_memory_plus_one_spills(self):
        engine = SortEngine(spec(memory=16))
        data = list(range(17, 0, -1))
        assert list(engine.sort(iter(data))) == sorted(data)
        assert engine.plan.mode == "spill"

    def test_probe_chains_records_back_exactly_once(self):
        # A one-shot iterator proves the probe neither drops nor
        # re-reads records around the boundary.
        engine = SortEngine(spec(memory=8))
        data = [5, 3, 8, 1, 9, 2, 7, 4, 6]  # memory + 1 records
        assert list(engine.sort(iter(data))) == sorted(data)
        assert engine.plan.mode == "spill"

    def test_known_size_skips_the_probe(self):
        engine = SortEngine(spec(memory=8))
        data = list(range(100))
        assert list(engine.sort(iter(data), input_records=100)) == data
        assert engine.plan.mode == "spill"
        assert "100 records" in engine.plan.reason or "large" in (
            engine.plan.reason
        )

    def test_empty_input_is_in_memory_noop(self):
        engine = SortEngine(spec(memory=8))
        assert list(engine.sort(iter([]))) == []
        assert engine.plan.mode == "in_memory"
        assert engine.report.records == 0
