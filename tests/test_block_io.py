"""Tests for the batched block readers/writers (repro.engine.block_io)."""

import io

import pytest

from repro.core.records import INT, STR
from repro.engine.block_io import (
    BlockWriter,
    iter_records,
    read_blocks,
    write_sequence,
)


class TestReadBlocks:
    def test_exact_block_boundaries(self):
        handle = io.StringIO("".join(f"{i}\n" for i in range(10)))
        blocks = list(read_blocks(handle, INT, 4))
        assert blocks == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]

    def test_missing_final_terminator(self):
        handle = io.StringIO("1\n2\n3")
        assert list(read_blocks(handle, INT, 2)) == [[1, 2], [3]]

    def test_empty_file(self):
        assert list(read_blocks(io.StringIO(""), INT, 4)) == []

    def test_invalid_block_records(self):
        with pytest.raises(ValueError, match="block_records"):
            list(read_blocks(io.StringIO("1\n"), INT, 0))


class TestIterRecords:
    def test_skip_blank_tolerates_gaps(self):
        handle = io.StringIO("1\n\n2\n   \n\n3\n")
        assert list(iter_records(handle, INT, 2, skip_blank=True)) == [1, 2, 3]

    def test_all_blank_input(self):
        handle = io.StringIO("\n\n\n")
        assert list(iter_records(handle, INT, 2, skip_blank=True)) == []

    def test_strict_mode_preserves_empty_string_records(self):
        # str format: an interior blank line is a real (empty) record
        # when blank skipping is off.
        handle = io.StringIO("a\n\nb\n")
        assert list(iter_records(handle, STR, 8)) == ["a", "", "b"]

    def test_skip_blank_never_drops_text_records(self):
        # Regression: whitespace-only lines are records for text
        # formats — skip_blank must only apply to the numeric formats,
        # or `sort --format str` silently loses lines vs sort(1).
        handle = io.StringIO("b\n \na\n\n")
        got = list(iter_records(handle, STR, 4, skip_blank=True))
        assert got == ["b", " ", "a", ""]


class TestBlockWriter:
    def test_write_all_across_many_flushes(self):
        # Regression: flush() used to rebind the pending list, orphaning
        # write_all's local alias — every record after the first block
        # was silently dropped.
        sink = io.StringIO()
        writer = BlockWriter(sink, INT, 3)
        assert writer.write_all(iter(range(10))) == 10
        writer.flush()
        assert sink.getvalue() == "".join(f"{i}\n" for i in range(10))

    def test_interleaved_write_and_write_all(self):
        sink = io.StringIO()
        writer = BlockWriter(sink, INT, 2)
        writer.write(1)
        writer.write_all([2, 3, 4])
        writer.write(5)
        writer.flush()
        assert sink.getvalue() == "1\n2\n3\n4\n5\n"
        assert writer.written == 5

    def test_nothing_written_without_records(self):
        sink = io.StringIO()
        writer = BlockWriter(sink, INT, 2)
        writer.flush()
        assert sink.getvalue() == ""
        assert writer.written == 0


class TestFileHelpers:
    def test_write_sequence_accepts_plain_iterators(self, tmp_path):
        path = str(tmp_path / "data.txt")
        assert write_sequence(path, iter([3, 1, 2]), INT, 2) == 3
        with open(path, encoding="utf-8") as handle:
            assert list(iter_records(handle, INT)) == [3, 1, 2]

    def test_sequence_and_iterator_paths_write_identical_bytes(self, tmp_path):
        data = list(range(100))
        a = str(tmp_path / "a.txt")
        b = str(tmp_path / "b.txt")
        write_sequence(a, iter(data), INT, 7)
        write_sequence(b, data, INT, 7)
        assert open(a).read() == open(b).read()
