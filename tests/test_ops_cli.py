"""CLI coverage for the operator subcommands (DESIGN.md §12).

distinct / agg / join / topk round-trips through ``repro.cli main``,
plus the ``merge`` subcommand (pre-sorted inputs, empty-input contract)
and the shared ``--report`` / error paths.
"""

import random

import pytest

from repro.cli import main


def write(path, lines):
    path.write_text("".join(line + "\n" for line in lines))
    return path


def run(capsys, argv):
    code = main(argv)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


# ---------------------------------------------------------------------------
# distinct
# ---------------------------------------------------------------------------


class TestDistinctCommand:
    def test_round_trip(self, tmp_path, capsys):
        source = write(tmp_path / "in.txt", ["5", "1", "5", "3", "1"])
        out = tmp_path / "out.txt"
        code, _, err = run(
            capsys, ["distinct", "--memory", "2", str(source), "-o", str(out)]
        )
        assert code == 0
        assert out.read_text() == "1\n3\n5\n"
        assert "5 rows in, 3 rows out" in err

    def test_by_key_mode(self, tmp_path, capsys):
        source = write(tmp_path / "in.csv", ["a,2", "a,1", "b,9"])
        out = tmp_path / "out.csv"
        code, _, _ = run(
            capsys,
            ["distinct", "--format", "csv", "--key", "0", "--by", "key",
             str(source), "-o", str(out)],
        )
        assert code == 0
        assert out.read_text() == "a,1\nb,9\n"

    def test_report_lines(self, tmp_path, capsys):
        source = write(tmp_path / "in.txt", [str(i % 7) for i in range(50)])
        code, _, err = run(
            capsys,
            ["distinct", "--memory", "8", "--report", str(source),
             "-o", str(tmp_path / "out.txt")],
        )
        assert code == 0
        assert "  ops    rows_in=50  rows_out=7  groups=7" in err
        assert "  plan   " in err

    def test_empty_input_exits_zero(self, tmp_path, capsys):
        source = write(tmp_path / "in.txt", [])
        out = tmp_path / "out.txt"
        code, _, _ = run(capsys, ["distinct", str(source), "-o", str(out)])
        assert code == 0
        assert out.read_text() == ""

    def test_workers_byte_identical(self, tmp_path, capsys):
        rng = random.Random(5)
        source = write(
            tmp_path / "in.txt",
            [str(rng.randint(0, 200)) for _ in range(1_000)],
        )
        serial = tmp_path / "serial.txt"
        parallel = tmp_path / "parallel.txt"
        assert run(capsys, ["distinct", "--memory", "64", str(source),
                            "-o", str(serial)])[0] == 0
        assert run(capsys, ["distinct", "--memory", "64", "--workers", "2",
                            str(source), "-o", str(parallel)])[0] == 0
        assert serial.read_bytes() == parallel.read_bytes()

    def test_resume_work_dir_round_trip(self, tmp_path, capsys):
        source = write(
            tmp_path / "in.txt", [str(i % 50) for i in range(500)]
        )
        out = tmp_path / "out.txt"
        code, _, _ = run(
            capsys,
            ["distinct", "--memory", "32", "--resume", "--checksum",
             str(source), "-o", str(out)],
        )
        assert code == 0
        assert out.read_text().splitlines() == [str(k) for k in range(50)]
        assert not (tmp_path / "out.txt.sortwork").exists()


# ---------------------------------------------------------------------------
# agg
# ---------------------------------------------------------------------------


class TestAggCommand:
    def test_round_trip(self, tmp_path, capsys):
        source = write(
            tmp_path / "ev.csv", ["b,2", "a,1", "b,3", "a,10"]
        )
        out = tmp_path / "out.csv"
        code, _, err = run(
            capsys,
            ["agg", "--format", "csv", "--key", "0", "--value", "1",
             "--agg", "count,sum,avg", str(source), "-o", str(out)],
        )
        assert code == 0
        assert out.read_text() == "a,2,11,5.5\nb,2,5,2.5\n"
        assert "2 rows out (2 groups)" in err

    def test_default_aggregate_is_count(self, tmp_path, capsys):
        source = write(tmp_path / "in.csv", ["a,1", "a,2"])
        out = tmp_path / "out.csv"
        code, _, _ = run(
            capsys,
            ["agg", "--format", "csv", str(source), "-o", str(out)],
        )
        assert code == 0
        assert out.read_text() == "a,2\n"

    def test_sum_without_value_column_fails(self, tmp_path, capsys):
        source = write(tmp_path / "in.csv", ["a,1"])
        with pytest.raises(SystemExit, match="value"):
            main(["agg", "--format", "csv", "--agg", "sum", str(source)])

    def test_text_value_under_sum_fails_cleanly(self, tmp_path, capsys):
        source = write(tmp_path / "in.csv", ["a,oops"])
        code, _, err = run(
            capsys,
            ["agg", "--format", "csv", "--agg", "sum", "--value", "1",
             str(source), "-o", str(tmp_path / "out.csv")],
        )
        assert code == 1
        assert "agg failed" in err

    def test_unknown_aggregate_rejected_by_parser(self, tmp_path):
        source = write(tmp_path / "in.csv", ["a,1"])
        with pytest.raises(SystemExit):
            main(["agg", "--format", "csv", "--agg", "median", str(source)])

    def test_scalar_format(self, tmp_path, capsys):
        source = write(tmp_path / "in.txt", ["5", "5", "2"])
        out = tmp_path / "out.txt"
        code, _, _ = run(
            capsys,
            ["agg", "--agg", "count,sum", str(source), "-o", str(out)],
        )
        assert code == 0
        assert out.read_text() == "2,1,2\n5,2,10\n"


# ---------------------------------------------------------------------------
# join
# ---------------------------------------------------------------------------


class TestJoinCommand:
    def test_round_trip(self, tmp_path, capsys):
        left = write(tmp_path / "l.csv", ["a,1", "a,2", "b,9", "d,4"])
        right = write(tmp_path / "r.csv", ["a,x", "a,y", "c,z", "d,w"])
        out = tmp_path / "out.csv"
        code, _, err = run(
            capsys,
            ["join", "--format", "csv", "--key", "0",
             str(left), str(right), "-o", str(out)],
        )
        assert code == 0
        assert out.read_text() == "a,1,x\na,1,y\na,2,x\na,2,y\nd,4,w\n"
        assert "5 rows out" in err

    def test_right_key_differs(self, tmp_path, capsys):
        left = write(tmp_path / "l.csv", ["a,1"])
        right = write(tmp_path / "r.csv", ["zzz,a"])
        out = tmp_path / "out.csv"
        code, _, _ = run(
            capsys,
            ["join", "--format", "csv", "--key", "0", "--right-key", "1",
             str(left), str(right), "-o", str(out)],
        )
        assert code == 0
        assert out.read_text() == "a,1,zzz\n"

    def test_report_shows_both_sides(self, tmp_path, capsys):
        left = write(tmp_path / "l.csv", [f"k{i:02d},1" for i in range(50)])
        right = write(tmp_path / "r.csv", [f"k{i:02d},x" for i in range(50)])
        code, _, err = run(
            capsys,
            ["join", "--format", "csv", "--memory", "8", "--report",
             str(left), str(right), "-o", str(tmp_path / "out.csv")],
        )
        assert code == 0
        assert "matches=50" in err
        assert "  left  " in err
        assert "  right " in err

    def test_two_stdin_inputs_rejected(self):
        with pytest.raises(SystemExit, match="at most one"):
            main(["join", "--format", "csv", "-", "-"])

    def test_buffer_limit_spill_warns(self, tmp_path, capsys):
        left = write(tmp_path / "l.csv", ["k,%d" % i for i in range(3)])
        right = write(tmp_path / "r.csv", ["k,r%d" % i for i in range(40)])
        out = tmp_path / "out.csv"
        code, _, err = run(
            capsys,
            ["join", "--format", "csv", "--buffer-limit", "8",
             str(left), str(right), "-o", str(out)],
        )
        assert code == 0
        assert "spilling" in err
        assert len(out.read_text().splitlines()) == 120

    def test_missing_key_column_fails_cleanly(self, tmp_path, capsys):
        left = write(tmp_path / "l.csv", ["a,1", "bare"])
        right = write(tmp_path / "r.csv", ["a,x"])
        code, _, err = run(
            capsys,
            ["join", "--format", "csv", "--key", "1",
             str(left), str(right), "-o", str(tmp_path / "out.csv")],
        )
        assert code == 1
        assert "join failed" in err
        assert "does not exist" in err

    def test_resume_join(self, tmp_path, capsys):
        rng = random.Random(7)
        left = write(
            tmp_path / "l.csv",
            [f"k{rng.randint(0, 40)},{i}" for i in range(400)],
        )
        right = write(
            tmp_path / "r.csv",
            [f"k{rng.randint(0, 40)},r{i}" for i in range(400)],
        )
        plain = tmp_path / "plain.csv"
        durable = tmp_path / "durable.csv"
        base = ["join", "--format", "csv", "--memory", "32"]
        assert run(capsys, base + [str(left), str(right),
                                   "-o", str(plain)])[0] == 0
        assert run(
            capsys,
            base + ["--resume", "--checksum", str(left), str(right),
                    "-o", str(durable)],
        )[0] == 0
        assert plain.read_bytes() == durable.read_bytes()
        assert not (tmp_path / "durable.csv.joinwork").exists()

    def test_resume_join_uneven_sides_removes_work_dir(self, tmp_path, capsys):
        # One side exhausts first; the longer side's journaled work
        # dir must still be drained away, not leaked.
        left = write(tmp_path / "l.csv", ["a,1"])
        right = write(
            tmp_path / "r.csv",
            [f"k{i:04d},{i}" for i in range(800)] + ["a,x"],
        )
        out = tmp_path / "out.csv"
        code, _, _ = run(
            capsys,
            ["join", "--format", "csv", "--memory", "64", "--resume",
             str(left), str(right), "-o", str(out)],
        )
        assert code == 0
        assert out.read_text() == "a,1,x\n"
        assert not (tmp_path / "out.csv.joinwork").exists()


# ---------------------------------------------------------------------------
# topk
# ---------------------------------------------------------------------------


class TestTopkCommand:
    def test_heap_path(self, tmp_path, capsys):
        rng = random.Random(3)
        values = [rng.randint(0, 10_000) for _ in range(2_000)]
        source = write(tmp_path / "in.txt", [str(v) for v in values])
        out = tmp_path / "out.txt"
        code, _, err = run(
            capsys,
            ["topk", "-k", "10", "--memory", "1000",
             str(source), "-o", str(out)],
        )
        assert code == 0
        assert out.read_text().splitlines() == [
            str(v) for v in sorted(values)[:10]
        ]
        assert "HEAP" in err

    def test_sorted_fallback_matches_heap(self, tmp_path, capsys):
        rng = random.Random(4)
        values = [rng.randint(0, 10_000) for _ in range(2_000)]
        source = write(tmp_path / "in.txt", [str(v) for v in values])
        heap_out = tmp_path / "heap.txt"
        sort_out = tmp_path / "sort.txt"
        assert run(capsys, ["topk", "-k", "100", "--memory", "1000",
                            str(source), "-o", str(heap_out)])[0] == 0
        assert run(capsys, ["topk", "-k", "100", "--memory", "50",
                            str(source), "-o", str(sort_out)])[0] == 0
        assert heap_out.read_bytes() == sort_out.read_bytes()

    def test_report_heap_plan(self, tmp_path, capsys):
        source = write(tmp_path / "in.txt", ["3", "1", "2"])
        code, _, err = run(
            capsys,
            ["topk", "-k", "2", "--report", str(source),
             "-o", str(tmp_path / "out.txt")],
        )
        assert code == 0
        assert "plan   heap" in err

    def test_k_zero(self, tmp_path, capsys):
        source = write(tmp_path / "in.txt", ["3", "1"])
        out = tmp_path / "out.txt"
        code, _, _ = run(capsys, ["topk", "-k", "0", str(source),
                                  "-o", str(out)])
        assert code == 0
        assert out.read_text() == ""

    def test_durable_sorted_path_removes_work_dir(self, tmp_path, capsys):
        # The truncated merge must not leak OUTPUT.sortwork on success.
        rng = random.Random(6)
        source = write(
            tmp_path / "in.txt",
            [str(rng.randint(0, 9_999)) for _ in range(2_000)],
        )
        out = tmp_path / "out.txt"
        code, _, _ = run(
            capsys,
            ["topk", "-k", "200", "--memory", "100", "--resume",
             str(source), "-o", str(out)],
        )
        assert code == 0
        assert len(out.read_text().splitlines()) == 200
        assert not (tmp_path / "out.txt.sortwork").exists()


# ---------------------------------------------------------------------------
# merge
# ---------------------------------------------------------------------------


class TestMergeCommand:
    def test_merges_sorted_files(self, tmp_path, capsys):
        a = write(tmp_path / "a.txt", ["1", "3", "5"])
        b = write(tmp_path / "b.txt", ["2", "4", "6"])
        out = tmp_path / "out.txt"
        code, _, err = run(
            capsys, ["merge", str(a), str(b), "-o", str(out)]
        )
        assert code == 0
        assert out.read_text() == "1\n2\n3\n4\n5\n6\n"
        assert "6 records from 2 files" in err

    def test_inputs_survive(self, tmp_path, capsys):
        a = write(tmp_path / "a.txt", ["1"])
        b = write(tmp_path / "b.txt", ["2"])
        run(capsys, ["merge", str(a), str(b), "-o", str(tmp_path / "o.txt")])
        assert a.read_text() == "1\n"
        assert b.read_text() == "2\n"

    def test_empty_input_list_exits_zero(self, tmp_path, capsys):
        out = tmp_path / "out.txt"
        code, _, err = run(capsys, ["merge", "-o", str(out)])
        assert code == 0
        assert out.read_text() == ""
        assert "0 records from 0 files" in err

    def test_many_files_with_intermediate_passes(self, tmp_path, capsys):
        paths = []
        for index in range(7):
            paths.append(
                str(write(
                    tmp_path / f"run{index}.txt",
                    [str(v) for v in range(index, 100, 7)],
                ))
            )
        out = tmp_path / "out.txt"
        code, _, err = run(
            capsys,
            ["merge", "--fan-in", "3", "--report", *paths, "-o", str(out)],
        )
        assert code == 0
        assert out.read_text().splitlines() == sorted(
            (str(v) for v in range(100)), key=int
        )
        assert "passes=2" in err

    def test_delimited_merge(self, tmp_path, capsys):
        a = write(tmp_path / "a.csv", ["a,1", "c,3"])
        b = write(tmp_path / "b.csv", ["b,2"])
        out = tmp_path / "out.csv"
        code, _, _ = run(
            capsys,
            ["merge", "--format", "csv", "--key", "0",
             str(a), str(b), "-o", str(out)],
        )
        assert code == 0
        assert out.read_text() == "a,1\nb,2\nc,3\n"

    def test_checksum_flag_accepts_plain_input_files(self, tmp_path, capsys):
        # --checksum only applies to the merge's own intermediate
        # spills; caller-provided inputs are plain text files.
        paths = [
            str(write(tmp_path / f"in{i}.txt",
                      [str(v) for v in range(i, 30, 3)]))
            for i in range(3)
        ]
        out = tmp_path / "out.txt"
        code, _, _ = run(
            capsys,
            ["merge", "--checksum", "--fan-in", "2", *paths,
             "-o", str(out)],
        )
        assert code == 0
        assert out.read_text().splitlines() == sorted(
            (str(v) for v in range(30)), key=int
        )

    def test_missing_file_fails_cleanly(self, tmp_path, capsys):
        code, _, err = run(
            capsys,
            ["merge", str(tmp_path / "nope.txt"),
             "-o", str(tmp_path / "out.txt")],
        )
        assert code == 1
        assert "merge failed" in err

    def test_blank_separator_lines_tolerated(self, tmp_path, capsys):
        # Same input tolerance as `sort`: trailing/blank lines in
        # numeric-format files are separators, not records.
        a = write(tmp_path / "a.txt", ["1", "", "3", ""])
        b = write(tmp_path / "b.txt", ["2"])
        out = tmp_path / "out.txt"
        code, _, _ = run(capsys, ["merge", str(a), str(b), "-o", str(out)])
        assert code == 0
        assert out.read_text() == "1\n2\n3\n"

    def test_undecodable_record_fails_cleanly(self, tmp_path, capsys):
        bad = write(tmp_path / "bad.txt", ["1", "x", "3"])
        code, _, err = run(
            capsys,
            ["merge", str(bad), "-o", str(tmp_path / "out.txt")],
        )
        assert code == 1
        assert "merge failed" in err


# ---------------------------------------------------------------------------
# multi-column --key parsing
# ---------------------------------------------------------------------------


class TestMultiColumnKey:
    def test_sort_by_two_columns(self, tmp_path, capsys):
        source = write(
            tmp_path / "in.csv", ["b,2,x", "a,9,z", "a,1,y", "b,1,w"]
        )
        out = tmp_path / "out.csv"
        code, _, _ = run(
            capsys,
            ["sort", "--format", "csv", "--key", "0,1",
             str(source), "-o", str(out)],
        )
        assert code == 0
        assert out.read_text() == "a,1,y\na,9,z\nb,1,w\nb,2,x\n"

    def test_bad_key_spec_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["sort", "--format", "csv", "--key", "0,x",
                  str(tmp_path / "in.csv")])
