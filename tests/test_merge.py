"""Tests for k-way merge, polyphase merge, and the merge tree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.iosim.disk import DiskGeometry, DiskModel
from repro.iosim.files import SimulatedFileSystem
from repro.merge.kway import MergeCounter, kway_merge, merge_runs
from repro.merge.merge_tree import MergeTree, merge_files
from repro.merge.polyphase import polyphase_merge, polyphase_schedule


class TestKwayMerge:
    def test_paper_example_figures_2_1_to_2_3(self):
        runs = [[3, 13, 14], [2, 8, 12, 16], [1, 7, 9, 17, 18]]
        assert merge_runs(runs) == [1, 2, 3, 7, 8, 9, 12, 13, 14, 16, 17, 18]

    def test_empty_streams(self):
        assert merge_runs([]) == []
        assert merge_runs([[], []]) == []

    def test_single_stream(self):
        assert merge_runs([[1, 2, 3]]) == [1, 2, 3]

    def test_duplicates_across_streams(self):
        assert merge_runs([[1, 3], [1, 3], [2]]) == [1, 1, 2, 3, 3]

    def test_lazy(self):
        stream = kway_merge([iter([2, 4]), iter([1, 3])])
        assert next(stream) == 1
        assert next(stream) == 2

    def test_counter(self):
        counter = MergeCounter()
        list(kway_merge([[1, 2], [3, 4]], counter))
        assert counter.records == 4
        assert counter.cpu_ops > 0


class TestPolyphaseSchedule:
    def test_table_2_1(self):
        steps = polyphase_schedule((8, 10, 3, 0, 8, 11))
        counts = [s.counts for s in steps]
        assert counts == [
            (8, 10, 3, 0, 8, 11),
            (5, 7, 0, 3, 5, 8),
            (2, 4, 3, 0, 2, 5),
            (0, 2, 1, 2, 0, 3),
            (1, 1, 0, 1, 0, 2),
            (0, 0, 1, 0, 0, 1),
            (1, 0, 0, 0, 0, 0),
        ]

    def test_requires_exactly_one_empty_tape(self):
        with pytest.raises(ValueError):
            polyphase_schedule((1, 2, 3))
        with pytest.raises(ValueError):
            polyphase_schedule((0, 0, 3))

    def test_requires_three_tapes(self):
        with pytest.raises(ValueError):
            polyphase_schedule((1, 0))

    def test_ends_with_single_run(self):
        steps = polyphase_schedule((2, 3, 0))
        assert sum(steps[-1].counts) == 1


class TestPolyphaseMerge:
    def test_merges_to_single_sorted_run(self):
        tapes = [
            [[1, 5], [9, 10]],
            [[2, 6], [0, 11], [3, 3]],
            [],
        ]
        flat = sorted(v for tape in tapes for run in tape for v in run)
        assert polyphase_merge(tapes) == flat

    def test_empty_everything(self):
        assert polyphase_merge([[], [[1]], []]) == [1]


def small_fs(page_records=8):
    return SimulatedFileSystem(
        DiskModel(geometry=DiskGeometry(page_records=page_records))
    )


class TestMergeTree:
    def _run_files(self, fs, runs):
        return [
            fs.create_from(f"r{i}", sorted(run)) for i, run in enumerate(runs)
        ]

    def test_merges_many_runs(self):
        fs = small_fs()
        runs = [list(range(i, 100, 7)) for i in range(7)]
        files = self._run_files(fs, runs)
        out = merge_files(fs, files, fan_in=3, memory_capacity=64)
        expected = sorted(v for run in runs for v in run)
        assert out.read_all() == expected

    def test_single_run_passthrough(self):
        fs = small_fs()
        files = self._run_files(fs, [[1, 2, 3]])
        out = merge_files(fs, files, fan_in=2)
        assert out.read_all() == [1, 2, 3]

    def test_empty_sources(self):
        fs = small_fs()
        out = merge_files(fs, [], fan_in=2)
        assert out.read_all() == []

    def test_intermediate_files_deleted(self):
        fs = small_fs()
        files = self._run_files(fs, [[i] for i in range(9)])
        out = merge_files(fs, files, fan_in=3, memory_capacity=64)
        # Only the final output file should remain.
        assert fs.names() == [out.name]

    def test_invalid_fan_in(self):
        with pytest.raises(ValueError):
            MergeTree(small_fs(), fan_in=1)

    def test_higher_fan_in_fewer_passes_less_data_written(self):
        runs = [sorted(range(i, 200, 16)) for i in range(16)]
        fs_low = small_fs()
        merge_files(fs_low, self._run_files(fs_low, runs), fan_in=2, memory_capacity=64)
        pages_low = fs_low.disk.stats.pages_written
        fs_high = small_fs()
        merge_files(
            fs_high, self._run_files(fs_high, runs), fan_in=16, memory_capacity=64
        )
        pages_high = fs_high.disk.stats.pages_written
        assert pages_high < pages_low

    def test_counter_counts_all_passes(self):
        fs = small_fs()
        files = self._run_files(fs, [[i] for i in range(4)])
        tree = MergeTree(fs, fan_in=2, memory_capacity=64)
        tree.merge(files)
        # 4 records in pass one + 4 in pass two.
        assert tree.counter.records == 8


@settings(max_examples=100)
@given(st.lists(st.lists(st.integers()), max_size=8))
def test_kway_merge_equals_sorted_concat(runs):
    sorted_runs = [sorted(r) for r in runs]
    expected = sorted(v for r in runs for v in r)
    assert merge_runs(sorted_runs) == expected


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.lists(st.integers(), max_size=40), min_size=1, max_size=10),
    st.integers(2, 6),
)
def test_merge_tree_equals_sorted_concat(runs, fan_in):
    fs = small_fs(page_records=4)
    files = [
        fs.create_from(f"r{i}", sorted(run)) for i, run in enumerate(runs)
    ]
    out = merge_files(fs, files, fan_in=fan_in, memory_capacity=32)
    assert out.read_all() == sorted(v for run in runs for v in run)
