"""Tests for the snowplow differential model (Section 3.6)."""

import math

import pytest

from repro.model.snowplow import ModelRun, SnowplowModel, stable_density


class TestConstruction:
    def test_invalid_cells(self):
        with pytest.raises(ValueError):
            SnowplowModel(cells=2)

    def test_invalid_num_runs(self):
        with pytest.raises(ValueError):
            SnowplowModel().solve(num_runs=0)

    def test_zero_mass_data_rejected(self):
        with pytest.raises(ValueError):
            SnowplowModel(data=lambda x: 0.0)

    def test_k2_is_data_integral(self):
        model = SnowplowModel(data=lambda x: 2.0, cells=128)
        assert model.k2 == pytest.approx(2.0, rel=1e-6)


class TestDensity:
    def test_initial_density_uniform(self):
        model = SnowplowModel(cells=64)
        assert all(v == pytest.approx(1.0) for v in model.density_profile(0.0))

    def test_density_grows_linearly_before_clearing(self):
        model = SnowplowModel(cells=64)
        # dm/dt = k1/k2 * data = 1 everywhere for uniform data.
        assert model.density(0.5, 2.0) == pytest.approx(3.0)

    def test_initial_memory_usage_is_one(self):
        model = SnowplowModel(cells=64)
        assert model.memory_usage(0.0) == pytest.approx(1.0, rel=1e-6)

    def test_custom_initial_density(self):
        model = SnowplowModel(cells=64, initial_density=stable_density)
        profile = model.density_profile(0.0)
        assert profile[0] == pytest.approx(2.0 - 2.0 * model.grid[0])


class TestConvergence:
    def test_uniform_input_run_lengths_approach_two(self):
        model = SnowplowModel(cells=128)
        runs = model.solve(num_runs=3, dt=1e-3)
        assert len(runs) == 3
        # Knuth/Section 3.5: stabilised run length = 2x memory.
        assert runs[-1].length == pytest.approx(2.0, abs=0.1)

    def test_stable_start_stays_stable(self):
        model = SnowplowModel(cells=128, initial_density=stable_density)
        runs = model.solve(num_runs=2, dt=1e-3)
        for run in runs:
            assert run.length == pytest.approx(2.0, abs=0.1)

    def test_density_converges_to_2_minus_2x(self):
        model = SnowplowModel(cells=128)
        runs = model.solve(num_runs=4, dt=1e-3)
        last = runs[-1]
        error = max(
            abs(v - stable_density(x))
            for v, x in zip(last.density_at_start, model.grid)
        )
        assert error < 0.1

    def test_first_run_shorter_than_stable(self):
        # From a uniform start the first run is below 2.0 (Figure 3.8a).
        model = SnowplowModel(cells=128)
        runs = model.solve(num_runs=2, dt=1e-3)
        assert runs[0].length < runs[1].length <= 2.2

    def test_memory_stays_bounded(self):
        model = SnowplowModel(cells=128)
        runs = model.solve(num_runs=3, dt=1e-3)
        end = runs[-1].end_time
        assert model.memory_usage(end) == pytest.approx(1.0, abs=0.15)

    def test_run_metadata_consistent(self):
        model = SnowplowModel(cells=64)
        runs = model.solve(num_runs=2, dt=1e-3)
        for run in runs:
            assert isinstance(run, ModelRun)
            assert run.end_time > run.start_time
            assert run.length == pytest.approx(
                model.k1 * (run.end_time - run.start_time)
            )

    def test_nonuniform_data_still_solves(self):
        # Rising input density: more snow near x=1.
        model = SnowplowModel(data=lambda x: 2 * x, cells=128)
        runs = model.solve(num_runs=2, dt=1e-3)
        assert all(run.length > 0 for run in runs)
