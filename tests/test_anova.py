"""Tests for the ANOVA machinery (Appendix B)."""

import numpy as np
import pytest
from scipy import stats as sstats

from repro.stats.anova import (
    Factor,
    FactorialDesign,
    all_main_effects,
    anova,
    first_order_interactions,
    one_way_anova,
    wls_weights_by_factor,
)


def two_factor_design(effect_a=None, effect_b=None, noise=0.5, reps=6, seed=0):
    rng = np.random.default_rng(seed)
    fa = Factor("a", ("x", "y", "z"))
    fb = Factor("b", ("p", "q"))
    design = FactorialDesign([fa, fb])
    effect_a = effect_a or {"x": 0.0, "y": 2.0, "z": 4.0}
    effect_b = effect_b or {"p": 0.0, "q": 1.0}
    for a in fa.levels:
        for b in fb.levels:
            for _ in range(reps):
                value = 10 + effect_a[a] + effect_b[b] + rng.normal(0, noise)
                design.add((a, b), value)
    return design


class TestFactor:
    def test_needs_two_levels(self):
        with pytest.raises(ValueError):
            Factor("a", ("only",))

    def test_duplicate_levels_rejected(self):
        with pytest.raises(ValueError):
            Factor("a", ("x", "x"))


class TestFactorialDesign:
    def test_add_and_len(self):
        design = two_factor_design()
        assert len(design) == 36

    def test_unknown_level_rejected(self):
        design = FactorialDesign([Factor("a", ("x", "y"))])
        with pytest.raises(ValueError, match="unknown level"):
            design.add(("zzz",), 1.0)

    def test_wrong_arity_rejected(self):
        design = FactorialDesign([Factor("a", ("x", "y"))])
        with pytest.raises(ValueError, match="expected 1 levels"):
            design.add(("x", "y"), 1.0)

    def test_level_means(self):
        design = FactorialDesign([Factor("a", ("x", "y"))])
        design.add(("x",), 1.0)
        design.add(("x",), 3.0)
        design.add(("y",), 10.0)
        assert design.level_means("a") == {"x": 2.0, "y": 10.0}

    def test_group_means(self):
        design = two_factor_design(noise=0.0)
        means = design.group_means(["a", "b"])
        assert means[("x", "p")] == pytest.approx(10.0)
        assert means[("z", "q")] == pytest.approx(15.0)

    def test_duplicate_factor_names_rejected(self):
        with pytest.raises(ValueError):
            FactorialDesign([Factor("a", ("x", "y")), Factor("a", ("p", "q"))])


class TestAnova:
    def test_detects_real_effects(self):
        design = two_factor_design()
        result = anova(design, [("a",), ("b",)])
        assert result.term("a").is_significant()
        assert result.term("b").is_significant()

    def test_rejects_null_effects(self):
        design = two_factor_design(
            effect_a={"x": 0, "y": 0, "z": 0}, effect_b={"p": 0, "q": 0}
        )
        result = anova(design, [("a",), ("b",)])
        assert not result.term("a").is_significant()
        assert not result.term("b").is_significant()

    def test_r_squared_high_for_strong_effects(self):
        design = two_factor_design(noise=0.1)
        result = anova(design, [("a",), ("b",)])
        assert result.r_squared > 0.95

    def test_matches_scipy_one_way(self):
        rng = np.random.default_rng(1)
        factor = Factor("g", ("a", "b", "c"))
        design = FactorialDesign([factor])
        groups = []
        for level, shift in zip(factor.levels, (0.0, 1.0, 0.5)):
            values = 5 + shift + rng.normal(0, 1, size=12)
            groups.append(values)
            for value in values:
                design.add((level,), value)
        ours = one_way_anova(design, "g").term("g")
        f_ref, p_ref = sstats.f_oneway(*groups)
        assert ours.f_value == pytest.approx(f_ref, rel=1e-9)
        assert ours.significance == pytest.approx(p_ref, rel=1e-9)

    def test_interaction_detected(self):
        rng = np.random.default_rng(2)
        fa = Factor("a", ("x", "y"))
        fb = Factor("b", ("p", "q"))
        design = FactorialDesign([fa, fb])
        for a in fa.levels:
            for b in fb.levels:
                # Pure interaction: effect only when levels "agree".
                bump = 3.0 if (a == "x") == (b == "p") else 0.0
                for _ in range(8):
                    design.add((a, b), bump + rng.normal(0, 0.3))
        result = anova(design, [("a",), ("b",), ("a", "b")])
        assert result.term("a", "b").is_significant()
        assert result.term("a", "b").f_value > result.term("a").f_value

    def test_balanced_ss_decomposition(self):
        design = two_factor_design()
        result = anova(design, [("a",), ("b",), ("a", "b")])
        decomposed = sum(t.sum_squares for t in result.terms) + result.residual_ss
        assert decomposed == pytest.approx(result.total_ss, rel=1e-9)

    def test_df_accounting(self):
        design = two_factor_design(reps=4)
        result = anova(design, [("a",), ("b",), ("a", "b")])
        assert result.term("a").df == 2
        assert result.term("b").df == 1
        assert result.term("a", "b").df == 2
        assert result.residual_df == len(design) - 1 - 5

    def test_saturated_model_rejected(self):
        design = FactorialDesign([Factor("a", ("x", "y"))])
        design.add(("x",), 1.0)
        design.add(("y",), 2.0)
        with pytest.raises(ValueError, match="saturated"):
            anova(design, [("a",)])

    def test_duplicate_terms_rejected(self):
        design = two_factor_design()
        with pytest.raises(ValueError, match="duplicate"):
            anova(design, [("a",), ("a",)])

    def test_empty_design_rejected(self):
        design = FactorialDesign([Factor("a", ("x", "y"))])
        with pytest.raises(ValueError):
            anova(design, [("a",)])

    def test_format_table_contains_stats(self):
        result = anova(two_factor_design(), [("a",)])
        text = result.format_table()
        assert "R2" in text
        assert "CV" in text
        assert "a" in text


class TestWls:
    def test_weights_inverse_variance(self):
        rng = np.random.default_rng(3)
        factor = Factor("j", ("small", "large"))
        design = FactorialDesign([factor])
        for _ in range(20):
            design.add(("small",), rng.normal(10, 0.1))
            design.add(("large",), rng.normal(20, 5.0))
        weights = wls_weights_by_factor(design, "j")
        variances = design.level_variances("j")
        # Low-variance observations get proportionally higher weight.
        ratio = weights[0] / weights[1]
        assert ratio == pytest.approx(
            variances["large"] / variances["small"], rel=1e-6
        )

    def test_wls_model_detects_effect_under_heteroscedasticity(self):
        rng = np.random.default_rng(4)
        fj = Factor("j", ("a", "b"))
        fk = Factor("k", ("u", "v"))
        design = FactorialDesign([fj, fk])
        for j, sigma in (("a", 0.1), ("b", 4.0)):
            for k, shift in (("u", 0.0), ("v", 1.0)):
                for _ in range(15):
                    design.add((j, k), 10 + shift + rng.normal(0, sigma))
        weights = wls_weights_by_factor(design, "j")
        result = anova(design, [("j",), ("k",)], weights=weights)
        assert result.weighted
        assert result.term("k").is_significant()


class TestHelpers:
    def test_all_main_effects(self):
        design = two_factor_design()
        assert all_main_effects(design) == [("a",), ("b",)]

    def test_first_order_interactions(self):
        design = two_factor_design()
        assert first_order_interactions(design) == [("a", "b")]
