"""Tests for the simulated disk, files, and reverse-file format."""

import pytest

from repro.iosim.disk import DiskGeometry, DiskModel
from repro.iosim.files import SimulatedFileSystem
from repro.iosim.reverse_file import ReverseRunReader, ReverseRunWriter


def small_fs(page_records=8, write_cache=True):
    geometry = DiskGeometry(page_records=page_records)
    return SimulatedFileSystem(DiskModel(geometry=geometry, write_cache=write_cache))


class TestDiskModel:
    def test_first_access_is_random(self):
        disk = DiskModel()
        disk.read_page(0)
        assert disk.stats.random_accesses == 1
        assert disk.stats.sequential_accesses == 0

    def test_forward_adjacent_read_is_sequential(self):
        disk = DiskModel()
        disk.read_page(10)
        disk.read_page(11)
        assert disk.stats.sequential_accesses == 1

    def test_backward_read_is_random(self):
        disk = DiskModel()
        disk.read_page(10)
        disk.read_page(9)
        assert disk.stats.random_accesses == 2

    def test_backward_adjacent_write_uses_cache(self):
        disk = DiskModel(write_cache=True)
        disk.write_page(10)
        disk.write_page(9)
        assert disk.stats.sequential_accesses == 1

    def test_backward_write_without_cache_is_random(self):
        disk = DiskModel(write_cache=False)
        disk.write_page(10)
        disk.write_page(9)
        assert disk.stats.random_accesses == 2

    def test_elapsed_accumulates(self):
        geometry = DiskGeometry()
        disk = DiskModel(geometry=geometry)
        disk.read_page(0)
        disk.read_page(1)
        expected = geometry.random_access_cost() + geometry.sequential_access_cost()
        assert disk.elapsed == pytest.approx(expected)

    def test_sequential_is_cheaper(self):
        geometry = DiskGeometry()
        assert geometry.sequential_access_cost() < geometry.random_access_cost() / 10

    def test_reset_stats_keeps_head(self):
        disk = DiskModel()
        disk.read_page(5)
        disk.reset_stats()
        disk.read_page(6)  # still sequential: head survived the reset
        assert disk.stats.sequential_accesses == 1


class TestSimulatedFile:
    def test_roundtrip(self):
        fs = small_fs()
        handle = fs.create_from("a", range(20))
        assert handle.read_all() == list(range(20))

    def test_len_and_pages(self):
        fs = small_fs(page_records=8)
        handle = fs.create_from("a", range(20))
        assert len(handle) == 20
        assert handle.num_pages == 3  # 8 + 8 + 4

    def test_read_before_close_fails(self):
        fs = small_fs()
        handle = fs.create("a")
        handle.append(1)
        with pytest.raises(ValueError, match="closed"):
            list(handle.records())

    def test_write_after_close_fails(self):
        fs = small_fs()
        handle = fs.create_from("a", [1])
        with pytest.raises(ValueError):
            handle.append(2)

    def test_sequential_scan_costs_one_seek(self):
        fs = small_fs(page_records=8)
        handle = fs.create_from("a", range(64))
        fs.disk.reset_stats()
        handle.read_all()
        assert fs.disk.stats.random_accesses <= 1
        assert fs.disk.stats.pages_read == 8

    def test_interleaved_reads_pay_seeks(self):
        fs = small_fs(page_records=8)
        a = fs.create_from("a", range(32))
        b = fs.create_from("b", range(32))
        fs.disk.reset_stats()
        reader_a = a.records()
        reader_b = b.records()
        # Alternate pages between the two files.
        for _ in range(4):
            for _ in range(8):
                next(reader_a)
            for _ in range(8):
                next(reader_b)
        assert fs.disk.stats.random_accesses == 8

    def test_records_buffered_amortises_seeks(self):
        fs = small_fs(page_records=8)
        a = fs.create_from("a", range(64))
        b = fs.create_from("b", range(64))
        fs.disk.reset_stats()
        reader_a = a.records_buffered(4)
        reader_b = b.records_buffered(4)
        for _ in range(2):
            for _ in range(32):
                next(reader_a)
            for _ in range(32):
                next(reader_b)
        # 4 refills total, one seek each, remaining pages sequential.
        assert fs.disk.stats.random_accesses == 4
        assert fs.disk.stats.sequential_accesses == 12

    def test_write_buffer_pages_batches_writes(self):
        fs = small_fs(page_records=8)
        handle = fs.create("a", write_buffer_pages=4)
        other = fs.create("b")
        for i in range(32):
            handle.append(i)
            other.append(i)  # interleave to force head movement
        handle.close()
        other.close()
        assert handle.read_all() == list(range(32))

    def test_read_page_out_of_range(self):
        fs = small_fs()
        handle = fs.create_from("a", range(4))
        with pytest.raises(IndexError):
            handle.read_page(99)


class TestFileSystem:
    def test_duplicate_name_rejected(self):
        fs = small_fs()
        fs.create("a")
        with pytest.raises(FileExistsError):
            fs.create("a")

    def test_open_missing(self):
        with pytest.raises(FileNotFoundError):
            small_fs().open("nope")

    def test_delete(self):
        fs = small_fs()
        fs.create("a")
        fs.delete("a")
        assert "a" not in fs
        with pytest.raises(FileNotFoundError):
            fs.delete("a")

    def test_disjoint_address_ranges(self):
        fs = small_fs()
        assert fs.allocate_base() != fs.allocate_base()


class TestReverseRunFile:
    def test_roundtrip_ascending(self):
        fs = small_fs(page_records=8)
        writer = ReverseRunWriter(fs, "rev", pages_per_file=4)
        for value in range(99, -1, -1):  # decreasing stream
            writer.append(value)
        writer.close()
        reader = ReverseRunReader(writer)
        assert reader.read_all() == list(range(100))

    def test_buffered_roundtrip(self):
        fs = small_fs(page_records=8)
        writer = ReverseRunWriter(fs, "rev", pages_per_file=4)
        for value in range(49, -1, -1):
            writer.append(value)
        writer.close()
        assert list(ReverseRunReader(writer).records_buffered(2)) == list(range(50))

    def test_chains_multiple_files(self):
        fs = small_fs(page_records=4)
        writer = ReverseRunWriter(fs, "rev", pages_per_file=3)
        # 3 pages/file with 1 header = 8 records per file; 20 records
        # need 3 chunk files.
        for value in range(19, -1, -1):
            writer.append(value)
        writer.close()
        assert writer.num_files == 3
        assert ReverseRunReader(writer).read_all() == list(range(20))

    def test_headers_record_start_position(self):
        fs = small_fs(page_records=4)
        writer = ReverseRunWriter(fs, "rev", pages_per_file=3)
        for value in range(5, 0, -1):  # 5 records: partial first page
            writer.append(value)
        writer.close()
        header = writer._chunks[0].header
        assert header is not None
        assert header.num_pages == 3
        assert header.start_page >= 1

    def test_read_before_close_fails(self):
        fs = small_fs()
        writer = ReverseRunWriter(fs, "rev")
        with pytest.raises(ValueError, match="closed"):
            ReverseRunReader(writer)

    def test_append_after_close_fails(self):
        fs = small_fs()
        writer = ReverseRunWriter(fs, "rev")
        writer.append(1)
        writer.close()
        with pytest.raises(ValueError):
            writer.append(0)

    def test_too_few_pages_rejected(self):
        with pytest.raises(ValueError):
            ReverseRunWriter(small_fs(), "rev", pages_per_file=1)

    def test_forward_read_is_mostly_sequential(self):
        fs = small_fs(page_records=8)
        writer = ReverseRunWriter(fs, "rev", pages_per_file=10)
        for value in range(63, -1, -1):
            writer.append(value)
        writer.close()
        fs.disk.reset_stats()
        ReverseRunReader(writer).read_all()
        stats = fs.disk.stats
        # One seek for the header plus one to jump to the data start;
        # the data pages stream sequentially.
        assert stats.sequential_accesses >= stats.pages_read - 3
