"""End-to-end tests for the resident sort service (DESIGN.md §16).

Three layers, cheapest first:

* scheduler-level — :class:`~repro.service.scheduler.JobScheduler`
  driven directly (quotas, cancellation, idempotent submit);
* in-process server — a real asyncio listener in a thread, talked to
  through :class:`~repro.service.client.ServiceClient` (concurrency,
  result streaming, sha256 identity with serial runs);
* subprocess server — ``python -m repro.cli serve`` killed with
  ``SIGKILL`` mid-spill and restarted, proving a job re-attached by id
  resumes from its §11 journal (``runs_reused > 0``) and produces
  byte-identical output; plus ``REPRO_FAULT_PLAN`` injection through
  the whole service path.
"""

import asyncio
import hashlib
import io
import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

import repro
from repro.service.client import ServiceClient, read_endpoint
from repro.service.jobs import JobSpec, job_id_for
from repro.service.runner import JobCancelled
from repro.service.scheduler import JobScheduler, TERMINAL_STATES
from repro.service.server import SortService

_SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def _write_input(path, n, stride=7):
    values = [(stride * i) % n for i in range(n)]
    path.write_text("\n".join(str(v) for v in values) + "\n")
    return values


def _sha256(text):
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _wait_scheduler(scheduler, job_id, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        payload = scheduler.status(job_id)
        assert payload is not None
        if payload["status"] in TERMINAL_STATES:
            return payload
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} never finished: {payload}")


# ---------------------------------------------------------------------------
# scheduler-level
# ---------------------------------------------------------------------------


class TestScheduler:
    def test_submit_is_idempotent_by_id(self, tmp_path):
        _write_input(tmp_path / "in.txt", 500)
        spec = JobSpec(op="sort", input=str(tmp_path / "in.txt"), memory=64)
        scheduler = JobScheduler(str(tmp_path / "spool"), total_memory=1000)
        try:
            first = scheduler.submit(spec)
            second = scheduler.submit(spec)
            assert first.job_id == second.job_id == job_id_for(spec)
            payload = _wait_scheduler(scheduler, first.job_id)
            assert payload["status"] == "done"
            assert payload["records_out"] == 500
            # Resubmitting a done job returns it, without a re-run.
            third = scheduler.submit(spec)
            assert third.attempt == first.attempt
        finally:
            scheduler.shutdown()

    def test_tenant_quota_clamps_grant_without_starvation(self, tmp_path):
        _write_input(tmp_path / "in.txt", 2000)
        scheduler = JobScheduler(
            str(tmp_path / "spool"),
            total_memory=1000,
            job_workers=4,
            tenant_quotas={"small": 50},
        )
        try:
            greedy = [
                JobSpec(
                    op="sort", input=str(tmp_path / "in.txt"),
                    memory=800, tenant="small", fan_in=4 + i,
                )
                for i in range(3)
            ]
            big = JobSpec(
                op="sort", input=str(tmp_path / "in.txt"), memory=1000
            )
            states = [scheduler.submit(spec) for spec in greedy]
            big_state = scheduler.submit(big)
            for state in states:
                payload = _wait_scheduler(scheduler, state.job_id)
                assert payload["status"] == "done", payload["error"]
                # The quota clamped the ask; the job still completed.
                assert 0 < payload["granted"] <= 50
            payload = _wait_scheduler(scheduler, big_state.job_id)
            assert payload["status"] == "done", payload["error"]
            # The unquota'd tenant was not starved by the greedy one —
            # it got its full ask once the pool drained.
            assert payload["granted"] == 1000
            assert scheduler.broker.free == 1000
        finally:
            scheduler.shutdown()

    def test_cancel_releases_memory_for_waiters(self, tmp_path, monkeypatch):
        """A cancelled job's grant must come back to the pool."""
        from repro.service import scheduler as scheduler_module

        release = threading.Event()

        def blocking_run_job(spec, *, memory, work_dir, result_path,
                             cancel=None, job_id=""):
            while not cancel.is_set():
                if release.wait(0.01):
                    break
            if cancel.is_set():
                raise JobCancelled(f"job {job_id} cancelled")
            from repro.service.runner import JobOutcome

            return JobOutcome(records_out=0)

        monkeypatch.setattr(scheduler_module, "run_job", blocking_run_job)
        _write_input(tmp_path / "in.txt", 10)
        scheduler = JobScheduler(
            str(tmp_path / "spool"), total_memory=100, job_workers=2
        )
        try:
            hog = JobSpec(
                op="sort", input=str(tmp_path / "in.txt"), memory=100
            )
            hog_state = scheduler.submit(hog)
            deadline = time.monotonic() + 10.0
            while scheduler.status(hog_state.job_id)["status"] != "running":
                assert time.monotonic() < deadline
                time.sleep(0.01)
            # The whole pool is held; a second full-pool job must wait.
            waiter = JobSpec(
                op="sort", input=str(tmp_path / "in.txt"),
                memory=100, fan_in=4,
            )
            waiter_state = scheduler.submit(waiter)
            assert scheduler.cancel(hog_state.job_id)
            payload = _wait_scheduler(scheduler, hog_state.job_id)
            assert payload["status"] == "cancelled"
            release.set()
            payload = _wait_scheduler(scheduler, waiter_state.job_id)
            assert payload["status"] == "done"
            assert payload["granted"] == 100
            assert scheduler.broker.free == 100
        finally:
            release.set()
            scheduler.shutdown()


# ---------------------------------------------------------------------------
# in-process server
# ---------------------------------------------------------------------------


@pytest.fixture()
def live_server(tmp_path):
    service = SortService(
        str(tmp_path / "spool"), total_memory=2000, job_workers=4
    )
    endpoint = tmp_path / "endpoint.json"

    def serve():
        asyncio.run(service.run(endpoint_file=str(endpoint)))

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    client = ServiceClient(read_endpoint(str(endpoint), timeout=30.0))
    yield client, tmp_path
    try:
        client.shutdown()
    except (ConnectionError, OSError):
        pass
    thread.join(timeout=30.0)
    assert not thread.is_alive()


class TestLiveServer:
    def test_concurrent_jobs_match_serial_sha256(self, live_server):
        client, tmp_path = live_server
        jobs = []
        for index in range(5):
            n = 1500 + 137 * index
            path = tmp_path / f"in-{index}.txt"
            values = _write_input(path, n, stride=7 + 2 * index)
            expected = "\n".join(str(v) for v in sorted(values)) + "\n"
            payload = client.submit(
                {"op": "sort", "input": str(path), "memory": 150}
            )
            jobs.append((payload["id"], expected))
        for job_id, expected in jobs:
            payload = client.wait(job_id)
            assert payload["status"] == "done", payload["error"]
            assert payload["report"]["runs"] > 1  # really spilled
            sink = io.StringIO()
            client.result(job_id, sink)
            assert _sha256(sink.getvalue()) == _sha256(expected)

    def test_operator_jobs_through_the_service(self, live_server):
        client, tmp_path = live_server
        path = tmp_path / "dup.txt"
        path.write_text("\n".join(["4", "2", "4", "9", "2", "2"]) + "\n")
        cases = [
            ({"op": "distinct", "input": str(path), "memory": 64},
             "2\n4\n9\n"),
            ({"op": "topk", "input": str(path), "k": 2, "memory": 64},
             "2\n2\n"),
            ({"op": "agg", "input": str(path), "memory": 64},
             "2,3\n4,2\n9,1\n"),
        ]
        for job, expected in cases:
            payload = client.wait(client.submit(job)["id"])
            assert payload["status"] == "done", payload["error"]
            sink = io.StringIO()
            client.result(job_id=payload["id"], sink=sink)
            assert sink.getvalue() == expected, job["op"]

    def test_result_refused_until_done(self, live_server):
        client, tmp_path = live_server
        from repro.service.client import ServiceError

        with pytest.raises(ServiceError, match="unknown job id"):
            client.status("no-such-job")
        with pytest.raises(ServiceError, match="unknown job id"):
            sink = io.StringIO()
            client.result("no-such-job", sink)


# ---------------------------------------------------------------------------
# subprocess server: crash, re-attach, fault injection
# ---------------------------------------------------------------------------


def _spawn_server(tmp_path, *extra_args, env_extra=None, endpoint="ep.json"):
    endpoint_path = tmp_path / endpoint
    if endpoint_path.exists():
        endpoint_path.unlink()  # never read a dead server's address
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    env.update(env_extra or {})
    log = open(tmp_path / "serve.log", "ab")
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--spool", str(tmp_path / "spool"),
            "--endpoint-file", str(endpoint_path),
            "--memory", "2000",
        ]
        + list(extra_args),
        stdout=log, stderr=log, env=env,
    )
    try:
        address = read_endpoint(str(endpoint_path), timeout=30.0)
    except TimeoutError:
        process.kill()
        raise
    finally:
        log.close()
    return process, ServiceClient(address)


def _work_files(spool, job_id):
    work = os.path.join(str(spool), "jobs", job_id, "work")
    found = []
    for dirpath, _, filenames in os.walk(work):
        found.extend(os.path.join(dirpath, f) for f in filenames)
    return found


class TestCrashReattach:
    def test_kill9_mid_spill_then_reattach_is_identical(self, tmp_path):
        values = _write_input(tmp_path / "in.txt", 120_000, stride=31)
        expected = "\n".join(str(v) for v in sorted(values)) + "\n"
        job = {
            "op": "sort", "input": str(tmp_path / "in.txt"), "memory": 300,
        }
        process, client = _spawn_server(tmp_path)
        try:
            job_id = client.submit(job)["id"]
            # Wait until the job has durably spilled some runs, then
            # kill the server the hard way — no cleanup, no goodbye.
            deadline = time.monotonic() + 60.0
            while len(_work_files(tmp_path / "spool", job_id)) < 3:
                assert time.monotonic() < deadline, "job never spilled"
                time.sleep(0.02)
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=30.0)
        except BaseException:
            process.kill()
            raise
        # Restart over the same spool; the job must come back as
        # interrupted and be re-attachable by its id alone.
        process, client = _spawn_server(tmp_path)
        try:
            listed = client.jobs()["jobs"]
            assert [j["id"] for j in listed] == [job_id]
            assert listed[0]["status"] == "interrupted"
            resubmitted = client.submit_id(job_id)
            assert resubmitted["id"] == job_id
            payload = client.wait(job_id, timeout=120.0)
            assert payload["status"] == "done", payload["error"]
            # The §11 journal made the resume real, not a re-run.
            assert payload["resume"]["runs_reused"] > 0
            assert payload["attempt"] >= 1
            sink = io.StringIO()
            client.result(job_id, sink)
            assert _sha256(sink.getvalue()) == _sha256(expected)
            client.shutdown()
            process.wait(timeout=30.0)
        except BaseException:
            process.kill()
            raise


class TestServiceFaultInjection:
    def _run_faulted(self, tmp_path, plan):
        _write_input(tmp_path / "in.txt", 20_000, stride=13)
        job = {
            "op": "sort", "input": str(tmp_path / "in.txt"), "memory": 200,
            "output": str(tmp_path / "OUTPUT"),
        }
        process, client = _spawn_server(
            tmp_path, env_extra={"REPRO_FAULT_PLAN": json.dumps(plan)}
        )
        try:
            payload = client.wait(
                client.submit(job)["id"], timeout=60.0
            )
            client.shutdown()
            process.wait(timeout=30.0)
        except BaseException:
            process.kill()
            raise
        return payload

    def test_spill_write_fault_fails_job_cleanly(self, tmp_path):
        payload = self._run_faulted(
            tmp_path,
            {"op": "write", "nth": 3, "kind": "raise",
             "path_substring": "run-"},
        )
        assert payload["status"] == "failed"
        assert "fault" in payload["error"].lower()
        assert not os.path.exists(tmp_path / "OUTPUT")

    def test_publish_write_fault_leaves_no_partial_output(self, tmp_path):
        payload = self._run_faulted(
            tmp_path,
            {"op": "write", "nth": 1, "kind": "raise",
             "path_substring": "OUTPUT.tmp"},
        )
        assert payload["status"] == "failed"
        assert not os.path.exists(tmp_path / "OUTPUT")
        assert not os.path.exists(str(tmp_path / "OUTPUT") + ".tmp")
