"""The paper's theorems, validated: predictions vs measured run counts.

Section 5.1 proves seven statements about RS and 2WRS run lengths;
``repro.analysis`` encodes the predictions and this module confirms
that the implementations obey them across sizes and seeds.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import analysis
from repro.core.config import TwoWayConfig
from repro.core.two_way import TwoWayReplacementSelection
from repro.runs.replacement_selection import ReplacementSelection
from repro.workloads.generators import (
    alternating_input,
    random_input,
    reverse_sorted_input,
    sorted_input,
)


class TestPredictors:
    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            analysis.rs_runs_sorted(-1, 10)
        with pytest.raises(ValueError):
            analysis.rs_runs_reverse_sorted(10, 0)
        with pytest.raises(ValueError):
            analysis.rs_runs_alternating(10, 0, 5)

    def test_empty_input_zero_runs(self):
        assert analysis.rs_runs_sorted(0, 10) == 0
        assert analysis.twrs_runs_reverse_sorted(0, 10) == 0

    def test_theorem_5_formula_maximum(self):
        # The proof's maximum: 2k / (k/m) = 2m when k divides cleanly.
        assert analysis.rs_alternating_average_run_length(10_000, 100) == (
            pytest.approx(2.0 * 100, rel=0.02)
        )


class TestTheorem1:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(10, 3_000), st.integers(2, 200))
    def test_rs_sorted(self, n, m):
        measured = ReplacementSelection(m).count_runs(sorted_input(n))
        assert measured == analysis.rs_runs_sorted(n, m)


class TestTheorem2:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(10, 3_000), st.integers(2, 200))
    def test_2wrs_sorted(self, n, m):
        measured = TwoWayReplacementSelection(m).count_runs(sorted_input(n))
        assert measured == analysis.twrs_runs_sorted(n, m)


class TestTheorem3:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(10, 3_000), st.integers(2, 200))
    def test_rs_reverse(self, n, m):
        measured = ReplacementSelection(m).count_runs(reverse_sorted_input(n))
        assert measured == analysis.rs_runs_reverse_sorted(n, m)


class TestTheorem4:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(10, 3_000), st.integers(2, 200))
    def test_2wrs_reverse(self, n, m):
        measured = TwoWayReplacementSelection(m).count_runs(
            reverse_sorted_input(n)
        )
        assert measured == analysis.twrs_runs_reverse_sorted(n, m)


class TestTheorem5:
    @pytest.mark.parametrize("sections,m", [(4, 100), (8, 200), (10, 100)])
    def test_rs_alternating_matches_formula(self, sections, m):
        n = 40_000
        measured = ReplacementSelection(m).count_runs(
            alternating_input(n, sections=sections)
        )
        predicted = analysis.rs_runs_alternating(n, sections, m)
        assert measured == pytest.approx(predicted, rel=0.15)


class TestTheorem6:
    @pytest.mark.parametrize("sections", [4, 8, 16])
    def test_2wrs_one_run_per_section(self, sections):
        n, m = 32_000, 200  # k = n/sections >> m
        measured = TwoWayReplacementSelection(m).count_runs(
            alternating_input(n, sections=sections)
        )
        assert measured == analysis.twrs_runs_alternating(n, sections, m)


class TestTheorem7:
    @pytest.mark.parametrize(
        "dataset",
        [
            lambda n: sorted_input(n),
            lambda n: reverse_sorted_input(n),
            lambda n: alternating_input(n, sections=8),
        ],
    )
    def test_2wrs_never_loses_on_structured_inputs(self, dataset):
        n, m = 20_000, 200
        rs_runs = ReplacementSelection(m).count_runs(dataset(n))
        twrs_runs = TwoWayReplacementSelection(m).count_runs(dataset(n))
        assert analysis.theorem_7_bound(rs_runs, twrs_runs)


class TestSnowplow:
    def test_rs_random_double_memory(self):
        n, m = 60_000, 300
        measured = ReplacementSelection(m).count_runs(random_input(n, seed=2))
        predicted = analysis.rs_runs_random(n, m)
        assert measured == pytest.approx(predicted, rel=0.15)

    def test_2wrs_random_double_memory(self):
        n, m = 60_000, 300
        config = TwoWayConfig(buffer_fraction=0.002)
        measured = TwoWayReplacementSelection(m, config).count_runs(
            random_input(n, seed=2)
        )
        predicted = analysis.twrs_runs_random(n, m)
        assert measured == pytest.approx(predicted, rel=0.20)
